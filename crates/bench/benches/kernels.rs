//! Criterion microbenches for the binary-operator merge/sort kernels:
//! the keyed (Schwartzian) hot path against the original
//! extract-per-comparison reference, on the duplicate-heavy
//! multi-column keys where the reference's per-probe key allocation
//! hurts most. `merge_reference` *is* the pre-overhaul algorithm, so
//! the `reference` vs `keyed` pairs below measure the overhaul
//! directly.
//!
//! The `*_layouts` groups compare the row and columnar block
//! traversals of the same kernels: per-tuple predicate evaluation vs
//! [`Predicate::eval_mask`] + [`ColumnarBlock::gather`], per-tuple
//! key extraction vs [`KeySpec::column_for_columnar`], and the
//! extract-then-sort path vs [`sort_run_with_keys`] over prebuilt
//! key columns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use eram_core::{merge_keyed, merge_reference, sort_run, sort_run_with_keys, KeySpec, MergeKind};
use eram_relalg::{CmpOp, Predicate};
use eram_storage::{ColumnType, ColumnarBlock, Schema, Tuple, Value};

const RUN: usize = 4_096;

fn tuple(a: i64, b: i64, c: i64) -> Tuple {
    Tuple::new(vec![Value::Int(a), Value::Int(b), Value::Int(c)])
}

/// Duplicate-heavy two-column join keys: `(i % 50, i % 8)` cycles
/// through 200 distinct keys over 4096 tuples, so every equal-key
/// group is ~20 tuples wide on each side — the reference re-extracts
/// both keys for every probed tuple of every group scan.
fn join_runs() -> (Vec<Tuple>, Vec<Tuple>, KeySpec, KeySpec) {
    let lt: Vec<Tuple> = (0..RUN as i64).map(|i| tuple(i % 50, i % 8, i)).collect();
    let rt: Vec<Tuple> = (0..RUN as i64).map(|i| tuple(i % 50, i % 8, -i)).collect();
    (
        lt,
        rt,
        KeySpec::Columns(vec![0, 1]),
        KeySpec::Columns(vec![0, 1]),
    )
}

fn bench_join_merge(c: &mut Criterion) {
    let (mut lt, mut rt, lspec, rspec) = join_runs();
    let lk = sort_run(&mut lt, &lspec);
    let rk = sort_run(&mut rt, &rspec);
    let mut g = c.benchmark_group("merge_join_dup_heavy");
    g.bench_function("reference", |b| {
        b.iter(|| {
            black_box(
                merge_reference(
                    MergeKind::Join,
                    &lspec,
                    &rspec,
                    black_box(&lt),
                    black_box(&rt),
                )
                .len(),
            )
        })
    });
    g.bench_function("keyed", |b| {
        b.iter(|| {
            black_box(merge_keyed(MergeKind::Join, black_box(&lt), &lk, black_box(&rt), &rk).len())
        })
    });
    g.finish();
}

fn bench_intersect_merge(c: &mut Criterion) {
    // Distinct whole-tuple keys with a 50% overlap. The reference
    // clones every probed tuple (the whole tuple is the key); the
    // keyed path compares in place.
    let mut lt: Vec<Tuple> = (0..RUN as i64).map(|i| tuple(i, 0, 0)).collect();
    let mut rt: Vec<Tuple> = ((RUN / 2) as i64..(3 * RUN / 2) as i64)
        .map(|i| tuple(i, 0, 0))
        .collect();
    let lk = sort_run(&mut lt, &KeySpec::Whole);
    let rk = sort_run(&mut rt, &KeySpec::Whole);
    let mut g = c.benchmark_group("merge_intersect");
    g.bench_function("reference", |b| {
        b.iter(|| {
            black_box(
                merge_reference(
                    MergeKind::Intersect,
                    &KeySpec::Whole,
                    &KeySpec::Whole,
                    black_box(&lt),
                    black_box(&rt),
                )
                .len(),
            )
        })
    });
    g.bench_function("keyed", |b| {
        b.iter(|| {
            black_box(
                merge_keyed(
                    MergeKind::Intersect,
                    black_box(&lt),
                    &lk,
                    black_box(&rt),
                    &rk,
                )
                .len(),
            )
        })
    });
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let (lt, _, lspec, _) = join_runs();
    let mut g = c.benchmark_group("sort_run_dup_heavy");
    g.bench_function("sort_by_key_extracting", |b| {
        b.iter(|| {
            let mut tuples = lt.clone();
            tuples.sort_by_key(|t| lspec.extract(t));
            black_box(tuples.len())
        })
    });
    g.bench_function("key_cached", |b| {
        b.iter(|| {
            let mut tuples = lt.clone();
            let keys = sort_run(&mut tuples, &lspec);
            black_box((tuples.len(), keys))
        })
    });
    g.finish();
}

/// The block-resident form of [`join_runs`]'s left run: same tuples,
/// one typed array per column.
fn columnar_run() -> (Vec<Tuple>, ColumnarBlock) {
    let schema = Schema::new(vec![
        ("a", ColumnType::Int),
        ("b", ColumnType::Int),
        ("c", ColumnType::Int),
    ]);
    let tuples: Vec<Tuple> = (0..RUN as i64).map(|i| tuple(i % 50, i % 8, i)).collect();
    let block = ColumnarBlock::from_tuples(&schema, &tuples).unwrap();
    (tuples, block)
}

fn bench_selection_layouts(c: &mut Criterion) {
    // ~50% selectivity on a duplicate-heavy column: the row path pays
    // a full tuple walk + clone per survivor; the columnar path scans
    // one typed array into a bitmap and gathers once.
    let (tuples, block) = columnar_run();
    let pred = Predicate::col_cmp(1, CmpOp::Lt, 4);
    let mut g = c.benchmark_group("selection_layouts");
    g.bench_function("row", |b| {
        b.iter(|| {
            let out: Vec<Tuple> = black_box(&tuples)
                .iter()
                .filter(|t| pred.eval(t))
                .cloned()
                .collect();
            black_box(out.len())
        })
    });
    g.bench_function("columnar", |b| {
        b.iter(|| {
            let mask = pred.eval_mask(black_box(&block));
            black_box(block.gather(&mask).len())
        })
    });
    g.finish();
}

fn bench_key_extract_layouts(c: &mut Criterion) {
    let (tuples, block) = columnar_run();
    let spec = KeySpec::Columns(vec![0, 1]);
    let mut g = c.benchmark_group("key_extract_layouts");
    g.bench_function("row", |b| {
        b.iter(|| {
            let keys: Vec<Tuple> = black_box(&tuples).iter().map(|t| spec.extract(t)).collect();
            black_box(keys.len())
        })
    });
    g.bench_function("columnar", |b| {
        b.iter(|| black_box(spec.column_for_columnar(black_box(&block))))
    });
    g.finish();
}

fn bench_sort_layouts(c: &mut Criterion) {
    // Ingest-time sort of a freshly decoded block: extract keys from
    // rows then sort, vs read the key column off the block and hand
    // it to the prekeyed sort.
    let (tuples, block) = columnar_run();
    let spec = KeySpec::Columns(vec![0, 1]);
    let mut g = c.benchmark_group("sort_layouts");
    g.bench_function("row_extract_sort", |b| {
        b.iter(|| {
            let mut run = tuples.clone();
            black_box(sort_run(&mut run, &spec))
        })
    });
    g.bench_function("columnar_prekeyed_sort", |b| {
        b.iter(|| {
            let mut run = block.to_tuples();
            let keys = spec
                .extract_columnar(&block)
                .expect("a Columns spec extracts keys");
            black_box(sort_run_with_keys(&mut run, keys))
        })
    });
    g.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().measurement_time(Duration::from_secs(5));
    targets = bench_join_merge, bench_intersect_merge, bench_sort,
        bench_selection_layouts, bench_key_extract_layouts, bench_sort_layouts
}
criterion_main!(kernels);
