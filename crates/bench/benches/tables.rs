//! Criterion benches: one complete experiment trial per paper table.
//!
//! These track the *engine's own* execution cost (real CPU time per
//! simulated trial), so regressions in the evaluator, the sampler, or
//! the strategy sizing show up in `cargo bench`. The table
//! *regeneration* (200-run sweeps, paper-format output) lives in the
//! `fig5_*` binaries — that is an experiment, not a microbenchmark.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use eram_bench::{harness::run_trial, TrialConfig, WorkloadKind};

fn bench_fig5_1_select(c: &mut Criterion) {
    let cfg = TrialConfig::paper(
        WorkloadKind::Select {
            output_tuples: 5_000,
        },
        Duration::from_secs(10),
        12.0,
    );
    c.bench_function("fig5_1_select_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&cfg, seed))
        })
    });
}

fn bench_fig5_2_intersect(c: &mut Criterion) {
    let cfg = TrialConfig::paper(
        WorkloadKind::Intersect { overlap: 5_000 },
        Duration::from_secs_f64(2.5),
        12.0,
    );
    c.bench_function("fig5_2_intersect_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&cfg, seed))
        })
    });
}

fn bench_fig5_3_join(c: &mut Criterion) {
    let cfg = TrialConfig::paper(
        WorkloadKind::Join {
            output_tuples: 70_000,
        },
        Duration::from_secs_f64(2.5),
        12.0,
    );
    c.bench_function("fig5_3_join_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(run_trial(&cfg, seed))
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(12));
    targets = bench_fig5_1_select, bench_fig5_2_intersect, bench_fig5_3_join
}
criterion_main!(tables);
