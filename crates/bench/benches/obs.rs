//! Criterion micro-bench guarding the observability layer's
//! zero-cost-when-disabled contract: `execute_count` with the default
//! (disabled) tracer and profiler must not regress against the
//! pre-observability baseline, and the recording variants are
//! measured alongside so the cost of turning them on stays visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use eram_core::executor::{execute_count, ExecParams};
use eram_core::{OneAtATimeInterval, Profiler, StoppingCriterion, Tracer};
use eram_relalg::{Catalog, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value};

fn paper_setup() -> (Arc<Disk>, Catalog, Expr) {
    let disk = Disk::new(
        Arc::new(SimClock::new()),
        DeviceProfile::sun_3_60().without_jitter(),
        7,
    );
    let schema = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
    let hf = HeapFile::load(
        disk.clone(),
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 100)])),
    )
    .unwrap();
    let mut cat = Catalog::new();
    cat.register("r", hf);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
    (disk, cat, expr)
}

fn bench_tracer_disabled(c: &mut Criterion) {
    let (disk, cat, expr) = paper_setup();
    let strategy = OneAtATimeInterval::new(12.0);
    c.bench_function("execute_count_tracer_disabled", |b| {
        b.iter(|| {
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::HardDeadline;
            params.seed = 7;
            black_box(execute_count(&disk, &cat, &expr, Duration::from_secs(2), params).unwrap())
        })
    });
}

fn bench_tracer_recording(c: &mut Criterion) {
    let (disk, cat, expr) = paper_setup();
    let strategy = OneAtATimeInterval::new(12.0);
    c.bench_function("execute_count_tracer_recording", |b| {
        b.iter(|| {
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::HardDeadline;
            params.seed = 7;
            params.tracer = Tracer::recording(disk.clock().clone());
            params.collect_metrics = true;
            black_box(execute_count(&disk, &cat, &expr, Duration::from_secs(2), params).unwrap())
        })
    });
}

/// The flight recorder's disabled path: every phase site takes the
/// `Option::None` branch and never calls `Instant::now()`, so this
/// must track `execute_count_tracer_disabled` (both are the default
/// `ExecParams`, spelled out here so the contract is explicit).
fn bench_profiler_disabled(c: &mut Criterion) {
    let (disk, cat, expr) = paper_setup();
    let strategy = OneAtATimeInterval::new(12.0);
    c.bench_function("execute_count_profiler_disabled", |b| {
        b.iter(|| {
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::HardDeadline;
            params.seed = 7;
            params.profiler = Profiler::disabled();
            black_box(execute_count(&disk, &cat, &expr, Duration::from_secs(2), params).unwrap())
        })
    });
}

fn bench_profiler_recording(c: &mut Criterion) {
    let (disk, cat, expr) = paper_setup();
    let strategy = OneAtATimeInterval::new(12.0);
    c.bench_function("execute_count_profiler_recording", |b| {
        b.iter(|| {
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::HardDeadline;
            params.seed = 7;
            params.profiler = Profiler::recording(disk.clock().clone());
            black_box(execute_count(&disk, &cat, &expr, Duration::from_secs(2), params).unwrap())
        })
    });
}

criterion_group! {
    name = obs;
    config = Criterion::default().measurement_time(Duration::from_secs(5));
    targets = bench_tracer_disabled, bench_tracer_recording,
        bench_profiler_disabled, bench_profiler_recording
}
criterion_main!(obs);
