//! Property test: selection pushdown preserves the output relation
//! exactly (not just its count) on random data and expressions.

use std::sync::Arc;

use proptest::prelude::*;

use eram_relalg::{eval, push_selections, Catalog, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value};

fn catalog(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> Catalog {
    let disk = Disk::new(
        Arc::new(SimClock::new()),
        DeviceProfile::sun_3_60().without_jitter(),
        0,
    );
    let mut cat = Catalog::new();
    for (name, rows) in [("a", rows_a), ("b", rows_b)] {
        let schema = Schema::new(vec![("x", ColumnType::Int), ("y", ColumnType::Int)]);
        let hf = HeapFile::load(
            disk.clone(),
            schema,
            rows.iter()
                .map(|&(x, y)| Tuple::new(vec![Value::Int(x), Value::Int(y)])),
        )
        .unwrap();
        cat.register(name, hf);
    }
    cat
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec(0i64..5, 0..20)
        .prop_map(|ys| {
            ys.into_iter()
                .enumerate()
                .map(|(i, y)| (i as i64 % 7, y))
                .collect::<Vec<_>>()
        })
        .prop_map(|mut v: Vec<(i64, i64)>| {
            v.sort_unstable();
            v.dedup();
            v
        })
}

fn arb_pred(arity: usize) -> impl Strategy<Value = Predicate> {
    let atom = prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (0..arity, -1i64..6).prop_map(|(c, k)| Predicate::col_cmp(c, CmpOp::Lt, k)),
        (0..arity, -1i64..6).prop_map(|(c, k)| Predicate::col_cmp(c, CmpOp::Eq, k)),
        (0..arity, 0..arity).prop_map(|(l, r)| Predicate::col_col(l, CmpOp::Le, r)),
    ];
    atom.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Predicate::not),
        ]
    })
}

fn arb_shape() -> impl Strategy<Value = (Expr, usize)> {
    // (expression, output arity) pairs to hang selections on.
    prop_oneof![
        Just((Expr::relation("a"), 2)),
        Just((Expr::relation("a").union(Expr::relation("b")), 2)),
        Just((Expr::relation("a").difference(Expr::relation("b")), 2)),
        Just((Expr::relation("a").intersect(Expr::relation("b")), 2)),
        Just((
            Expr::relation("a").join(Expr::relation("b"), vec![(0, 0)]),
            4
        )),
        Just((
            Expr::relation("a")
                .join(Expr::relation("b"), vec![(1, 1)])
                .join(Expr::relation("a"), vec![(0, 0)]),
            6
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn pushdown_preserves_output_relation(
        rows_a in arb_rows(),
        rows_b in arb_rows(),
        (shape, arity) in arb_shape(),
        seed_pred in prop::collection::vec(0u8..1, 1..2), // keep strategy signature simple
    ) {
        let _ = seed_pred;
        let cat = catalog(&rows_a, &rows_b);
        proptest!(|(pred in arb_pred(arity))| {
            let expr = shape.clone().select(pred);
            let pushed = push_selections(expr.clone(), &|_| Some(2));
            let before = eval::eval(&expr, &cat).unwrap();
            let after = eval::eval(&pushed, &cat).unwrap();
            prop_assert_eq!(&before, &after, "expr {} vs pushed {}", expr, pushed);
        });
    }

    #[test]
    fn double_selection_and_nesting(
        rows_a in arb_rows(),
        rows_b in arb_rows(),
    ) {
        let cat = catalog(&rows_a, &rows_b);
        proptest!(|(p in arb_pred(2), q in arb_pred(2))| {
            // σ_p(σ_q(a ∪ b)) fully pushed.
            let expr = Expr::relation("a")
                .union(Expr::relation("b"))
                .select(q)
                .select(p);
            let pushed = push_selections(expr.clone(), &|_| Some(2));
            prop_assert!(!format!("{pushed}").contains("select[true]"), "{pushed}");
            let before = eval::eval(&expr, &cat).unwrap();
            let after = eval::eval(&pushed, &cat).unwrap();
            prop_assert_eq!(before, after);
        });
    }
}
