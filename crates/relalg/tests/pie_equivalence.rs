//! Property test: the inclusion–exclusion rewrite preserves COUNT.
//!
//! For random relation instances and random expressions mixing
//! select/union/difference/intersect (with joins and projections
//! checked in targeted cases), the signed sum of exact term counts
//! must equal the exact count of the original expression.

use std::sync::Arc;

use proptest::prelude::*;

use eram_relalg::{eval, Catalog, CmpOp, Expr, PieRewrite, Predicate};
use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value};

fn tup(a: i64, b: i64) -> Tuple {
    Tuple::new(vec![Value::Int(a), Value::Int(b)])
}

/// Loads three arity-2 relations from row lists.
fn catalog(rows: [&[(i64, i64)]; 3]) -> Catalog {
    let disk = Disk::new(
        Arc::new(SimClock::new()),
        DeviceProfile::sun_3_60().without_jitter(),
        0,
    );
    let mut c = Catalog::new();
    for (name, data) in ["a", "b", "c"].iter().zip(rows) {
        let schema = Schema::new(vec![("x", ColumnType::Int), ("y", ColumnType::Int)]);
        let hf =
            HeapFile::load(disk.clone(), schema, data.iter().map(|&(a, b)| tup(a, b))).unwrap();
        c.register(*name, hf);
    }
    c
}

/// Signed sum of exact counts of the rewrite terms.
fn pie_count(expr: &Expr, cat: &Catalog) -> i64 {
    let rewrite = PieRewrite::rewrite(expr).unwrap();
    rewrite
        .terms
        .iter()
        .map(|t| {
            assert!(
                !t.expr.contains_union_or_difference(),
                "term must be union/difference-free: {}",
                t.expr
            );
            t.coefficient * eval::exact_count(&t.expr, cat).unwrap() as i64
        })
        .sum()
}

/// Random arity-preserving expressions over relations a/b/c.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::relation("a")),
        Just(Expr::relation("b")),
        Just(Expr::relation("c")),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.union(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.difference(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.intersect(r)),
            (inner.clone(), 0usize..2, -2i64..6)
                .prop_map(|(e, col, k)| e.select(Predicate::col_cmp(col, CmpOp::Le, k))),
            (inner, 0usize..2, -2i64..6).prop_map(|(e, col, k)| e.select(Predicate::col_cmp(
                col,
                CmpOp::Eq,
                k
            ))),
        ]
    })
}

/// Random small relation contents over a tight value domain, so that
/// unions/differences/intersections genuinely overlap.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..5, 0i64..5), 0..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pie_rewrite_preserves_exact_count(
        ra in arb_rows(),
        rb in arb_rows(),
        rc in arb_rows(),
        expr in arb_expr(),
    ) {
        let cat = catalog([&ra, &rb, &rc]);
        let exact = eval::exact_count(&expr, &cat).unwrap() as i64;
        prop_assert_eq!(pie_count(&expr, &cat), exact);
    }

    #[test]
    fn rewrite_of_join_over_set_ops_preserves_count(
        ra in arb_rows(),
        rb in arb_rows(),
        rc in arb_rows(),
    ) {
        // (a ∪ b) ⋈ c and (a − b) ⋈ c on the first column.
        let cat = catalog([&ra, &rb, &rc]);
        for expr in [
            Expr::relation("a")
                .union(Expr::relation("b"))
                .join(Expr::relation("c"), vec![(0, 0)]),
            Expr::relation("a")
                .difference(Expr::relation("b"))
                .join(Expr::relation("c"), vec![(0, 0)]),
        ] {
            let exact = eval::exact_count(&expr, &cat).unwrap() as i64;
            prop_assert_eq!(pie_count(&expr, &cat), exact);
        }
    }

    #[test]
    fn rewrite_of_projection_over_union_preserves_count(
        ra in arb_rows(),
        rb in arb_rows(),
    ) {
        let cat = catalog([&ra, &rb, &[]]);
        let expr = Expr::relation("a").union(Expr::relation("b")).project(vec![1]);
        let exact = eval::exact_count(&expr, &cat).unwrap() as i64;
        prop_assert_eq!(pie_count(&expr, &cat), exact);
    }
}
