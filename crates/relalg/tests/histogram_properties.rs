//! Property tests: histogram selectivity estimates track the exact
//! fraction on arbitrary integer data.

use proptest::prelude::*;

use eram_relalg::{CmpOp, EquiDepthHistogram};
use eram_storage::Value;

fn exact_fraction(values: &[i64], op: CmpOp, k: i64) -> f64 {
    let hits = values
        .iter()
        .filter(|&&v| match op {
            CmpOp::Eq => v == k,
            CmpOp::Ne => v != k,
            CmpOp::Lt => v < k,
            CmpOp::Le => v <= k,
            CmpOp::Gt => v > k,
            CmpOp::Ge => v >= k,
        })
        .count();
    hits as f64 / values.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Estimates are valid probabilities, and complementary operators
    /// sum to exactly 1.
    #[test]
    fn estimates_are_coherent(
        values in prop::collection::vec(-50i64..50, 1..400),
        k in -60i64..60,
        buckets in 1usize..32,
    ) {
        let h = EquiDepthHistogram::build(
            values.iter().map(|&v| Value::Int(v)).collect(),
            buckets,
        ).unwrap();
        let k = Value::Int(k);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let s = h.selectivity(op, &k);
            prop_assert!((0.0..=1.0).contains(&s), "{op:?}: {s}");
        }
        let lt = h.selectivity(CmpOp::Lt, &k);
        let ge = h.selectivity(CmpOp::Ge, &k);
        prop_assert!((lt + ge - 1.0).abs() < 1e-9);
        let eq = h.selectivity(CmpOp::Eq, &k);
        let ne = h.selectivity(CmpOp::Ne, &k);
        prop_assert!((eq + ne - 1.0).abs() < 1e-9);
    }

    /// Range estimates are within a couple of buckets' worth of the
    /// exact answer (the classic equi-depth error bound).
    #[test]
    fn range_estimates_are_bucket_accurate(
        values in prop::collection::vec(-1000i64..1000, 32..600),
        k in -1100i64..1100,
    ) {
        let buckets = 16usize;
        let h = EquiDepthHistogram::build(
            values.iter().map(|&v| Value::Int(v)).collect(),
            buckets,
        ).unwrap();
        let est = h.selectivity(CmpOp::Lt, &Value::Int(k));
        let exact = exact_fraction(&values, CmpOp::Lt, k);
        let tolerance = 2.0 / buckets.min(values.len()) as f64;
        prop_assert!(
            (est - exact).abs() <= tolerance + 1e-9,
            "P(x < {k}): est {est} vs exact {exact} (tol {tolerance})"
        );
    }

    /// Estimates are monotone in the constant for `<`.
    #[test]
    fn lt_estimate_is_monotone(
        values in prop::collection::vec(-100i64..100, 8..200),
    ) {
        let h = EquiDepthHistogram::build(
            values.iter().map(|&v| Value::Int(v)).collect(),
            8,
        ).unwrap();
        let mut last = 0.0f64;
        for k in (-110..110).step_by(5) {
            let s = h.selectivity(CmpOp::Lt, &Value::Int(k));
            prop_assert!(s + 1e-9 >= last, "not monotone at {k}: {s} < {last}");
            last = s;
        }
    }
}
