//! Property test: every expression the AST can represent prints to
//! text that parses back to the identical AST.

use proptest::prelude::*;

use eram_relalg::{parse_expr, CmpOp, Expr, Predicate};
use eram_storage::Value;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i64..1000).prop_map(Value::Int),
        // Finite floats only: the language has no NaN/inf literals.
        (-100i64..100, 1u32..1000).prop_map(|(m, d)| Value::Float(m as f64 + 1.0 / f64::from(d))),
        any::<bool>().prop_map(Value::Bool),
        "[a-z ]{0,8}".prop_map(Value::Str),
    ]
}

fn arb_cmp() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let atom = prop_oneof![
        Just(Predicate::True),
        Just(Predicate::False),
        (0usize..4, arb_cmp(), arb_value()).prop_map(|(c, op, v)| Predicate::col_cmp(c, op, v)),
        (0usize..4, arb_cmp(), 0usize..4).prop_map(|(l, op, r)| Predicate::col_col(l, op, r)),
    ];
    atom.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Predicate::not),
        ]
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    // Relation names must avoid the language's reserved words.
    let leaf = "[a-z][a-z0-9_]{0,6}"
        .prop_filter("not a keyword", |n| {
            !matches!(
                n.as_str(),
                "select"
                    | "project"
                    | "join"
                    | "union"
                    | "minus"
                    | "intersect"
                    | "and"
                    | "or"
                    | "not"
                    | "true"
                    | "false"
            )
        })
        .prop_map(Expr::relation);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), arb_predicate()).prop_map(|(e, p)| e.select(p)),
            (inner.clone(), prop::collection::vec(0usize..4, 1..3))
                .prop_map(|(e, cols)| e.project(cols)),
            (
                inner.clone(),
                inner.clone(),
                prop::collection::vec((0usize..4, 0usize..4), 1..3)
            )
                .prop_map(|(l, r, on)| l.join(r, on)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.union(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.difference(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.intersect(r)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(expr in arb_expr()) {
        let text = expr.to_string();
        let back = parse_expr(&text);
        prop_assert_eq!(back.as_ref(), Ok(&expr), "text was: {}", text);
    }
}
