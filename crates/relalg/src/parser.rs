//! The textual query language.
//!
//! ERAM "uses relational algebra expressions as its query language";
//! this module provides the concrete syntax — exactly the notation
//! [`Expr`]'s `Display` emits, so expressions round-trip:
//!
//! ```text
//! select[#1 < 5000](r)
//! project[#0,#2](orders)
//! join[#0=#0, #1=#2](r1, r2)
//! (select[#1 >= 10](a) union b)
//! ((a minus b) intersect c)
//! ```
//!
//! Predicates support `=, !=, <, <=, >, >=` over column references
//! (`#i`) and constants (integers, floats with a decimal point,
//! `true`/`false`, double-quoted strings), combined with
//! `and`/`or`/`not (...)`/parentheses.
//!
//! Reserved words (not usable as relation names): `select`,
//! `project`, `join`, `union`, `minus`, `intersect`, `and`, `or`,
//! `not`, `true`, `false`.

use eram_storage::Value;

use crate::expr::Expr;
use crate::predicate::{CmpOp, Operand, Predicate};

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses an RA expression in the crate's textual syntax.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(input);
    let expr = p.expr()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(expr)
}

/// Parses a predicate in the crate's textual syntax (useful for
/// interactive tools that assemble expressions programmatically).
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    let mut p = Parser::new(input);
    let pred = p.predicate()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing input after predicate"));
    }
    Ok(pred)
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn try_eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Reads an identifier/keyword; empty string if none.
    fn ident(&mut self) -> &'a str {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        &self.src[start..self.pos]
    }

    /// Looks ahead at the next identifier without consuming it.
    fn peek_ident(&mut self) -> &'a str {
        let save = self.pos;
        let id = self.ident();
        self.pos = save;
        id
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(b'(') {
            // Parenthesized, possibly an infix set operation.
            self.eat(b'(')?;
            let left = self.expr()?;
            let word = self.peek_ident();
            let expr = match word {
                "union" | "minus" | "intersect" => {
                    self.ident();
                    let right = self.expr()?;
                    match word {
                        "union" => left.union(right),
                        "minus" => left.difference(right),
                        _ => left.intersect(right),
                    }
                }
                _ => left,
            };
            self.eat(b')')?;
            return Ok(expr);
        }

        let save = self.pos;
        let name = self.ident();
        if name.is_empty() {
            return Err(self.err("expected expression"));
        }
        match name {
            "select" => {
                self.eat(b'[')?;
                let predicate = self.predicate()?;
                self.eat(b']')?;
                self.eat(b'(')?;
                let input = self.expr()?;
                self.eat(b')')?;
                Ok(input.select(predicate))
            }
            "project" => {
                self.eat(b'[')?;
                let mut columns = vec![self.column()?];
                while self.try_eat(b',') {
                    columns.push(self.column()?);
                }
                self.eat(b']')?;
                self.eat(b'(')?;
                let input = self.expr()?;
                self.eat(b')')?;
                Ok(input.project(columns))
            }
            "join" => {
                self.eat(b'[')?;
                let mut on = vec![self.key_pair()?];
                while self.try_eat(b',') {
                    on.push(self.key_pair()?);
                }
                self.eat(b']')?;
                self.eat(b'(')?;
                let left = self.expr()?;
                self.eat(b',')?;
                let right = self.expr()?;
                self.eat(b')')?;
                Ok(left.join(right, on))
            }
            _ => {
                // A relation name — but keywords in expression
                // position are reclassified as errors.
                if matches!(name, "union" | "minus" | "intersect") {
                    self.pos = save;
                    return Err(self.err(format!("unexpected keyword {name:?}")));
                }
                Ok(Expr::relation(name))
            }
        }
    }

    fn column(&mut self) -> Result<usize, ParseError> {
        self.eat(b'#')?;
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("expected column index after '#'"))
    }

    fn key_pair(&mut self) -> Result<(usize, usize), ParseError> {
        let l = self.column()?;
        self.eat(b'=')?;
        let r = self.column()?;
        Ok((l, r))
    }

    // predicate := and_chain ('or' and_chain)*   (left-assoc)
    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.pred_and()?;
        while self.peek_ident() == "or" {
            self.ident();
            let right = self.pred_and()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn pred_and(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.pred_atom()?;
        while self.peek_ident() == "and" {
            self.ident();
            let right = self.pred_atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn pred_atom(&mut self) -> Result<Predicate, ParseError> {
        match self.peek() {
            Some(b'(') => {
                self.eat(b'(')?;
                let p = self.predicate()?;
                self.eat(b')')?;
                Ok(p)
            }
            _ => {
                let word = self.peek_ident();
                match word {
                    "not" => {
                        self.ident();
                        self.eat(b'(')?;
                        let p = self.predicate()?;
                        self.eat(b')')?;
                        Ok(p.not())
                    }
                    // Bare true/false only count as predicates when
                    // not followed by a comparison operator.
                    "true" | "false" if !self.bool_is_operand() => {
                        self.ident();
                        Ok(if word == "true" {
                            Predicate::True
                        } else {
                            Predicate::False
                        })
                    }
                    _ => self.comparison(),
                }
            }
        }
    }

    /// After a bare `true`/`false`, is there a comparison operator?
    /// (`true = #0` treats it as a constant, plain `true` as a
    /// predicate.)
    fn bool_is_operand(&mut self) -> bool {
        let save = self.pos;
        let _ = self.ident();
        let next = self.peek();
        self.pos = save;
        matches!(next, Some(b'=' | b'!' | b'<' | b'>'))
    }

    fn comparison(&mut self) -> Result<Predicate, ParseError> {
        let left = self.operand()?;
        let op = self.cmp_op()?;
        let right = self.operand()?;
        Ok(Predicate::Compare { left, op, right })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                Ok(CmpOp::Eq)
            }
            Some(b'!') => {
                self.pos += 1;
                self.eat(b'=').map(|()| CmpOp::Ne)
            }
            Some(b'<') => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok(CmpOp::Le)
                } else {
                    Ok(CmpOp::Lt)
                }
            }
            Some(b'>') => {
                self.pos += 1;
                if self.bytes.get(self.pos) == Some(&b'=') {
                    self.pos += 1;
                    Ok(CmpOp::Ge)
                } else {
                    Ok(CmpOp::Gt)
                }
            }
            _ => Err(self.err("expected comparison operator")),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek() {
            Some(b'#') => Ok(Operand::Column(self.column()?)),
            Some(b'"') => Ok(Operand::Const(Value::Str(self.string_literal()?))),
            Some(c) if c == b'-' || c.is_ascii_digit() => Ok(Operand::Const(self.number()?)),
            _ => {
                let word = self.ident();
                match word {
                    "true" => Ok(Operand::Const(Value::Bool(true))),
                    "false" => Ok(Operand::Const(Value::Bool(false))),
                    _ => Err(self.err("expected column, number, string, or boolean")),
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == b'.' && !is_float {
                is_float = true;
                self.pos += 1;
            } else if (c == b'e' || c == b'E')
                && matches!(self.bytes.get(self.pos + 1), Some(d) if d.is_ascii_digit() || *d == b'-')
            {
                is_float = true;
                self.pos += 2;
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| self.err(format!("bad float {text:?}: {e}")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| self.err(format!("bad integer {text:?}: {e}")))
        }
    }

    fn string_literal(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        _ => return Err(self.err("unsupported escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one (possibly multibyte) char.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(e: &Expr) {
        let text = e.to_string();
        let back = parse_expr(&text).unwrap_or_else(|err| panic!("{text}: {err}"));
        assert_eq!(&back, e, "{text}");
    }

    #[test]
    fn parses_relations_and_operators() {
        assert_eq!(parse_expr("r").unwrap(), Expr::relation("r"));
        assert_eq!(
            parse_expr("select[#1 < 5](r)").unwrap(),
            Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 5))
        );
        assert_eq!(
            parse_expr("project[#0,#2](r)").unwrap(),
            Expr::relation("r").project(vec![0, 2])
        );
        assert_eq!(
            parse_expr("join[#0=#1](a, b)").unwrap(),
            Expr::relation("a").join(Expr::relation("b"), vec![(0, 1)])
        );
        assert_eq!(
            parse_expr("(a union b)").unwrap(),
            Expr::relation("a").union(Expr::relation("b"))
        );
        assert_eq!(
            parse_expr("(a minus b)").unwrap(),
            Expr::relation("a").difference(Expr::relation("b"))
        );
        assert_eq!(
            parse_expr("(a intersect b)").unwrap(),
            Expr::relation("a").intersect(Expr::relation("b"))
        );
    }

    #[test]
    fn parses_nested_expressions() {
        let e = parse_expr("((a union b) intersect select[#0 = 3](c))").unwrap();
        assert_eq!(
            e,
            Expr::relation("a")
                .union(Expr::relation("b"))
                .intersect(Expr::relation("c").select(Predicate::col_cmp(0, CmpOp::Eq, 3)))
        );
    }

    #[test]
    fn predicate_precedence_and_connectives() {
        let p = parse_predicate("#0 < 5 and #1 >= 2 or not (#2 != 0)").unwrap();
        // `and` binds tighter than `or`.
        let expected = Predicate::col_cmp(0, CmpOp::Lt, 5)
            .and(Predicate::col_cmp(1, CmpOp::Ge, 2))
            .or(Predicate::col_cmp(2, CmpOp::Ne, 0).not());
        assert_eq!(p, expected);
    }

    #[test]
    fn constants_of_every_type() {
        assert_eq!(
            parse_predicate("#0 = -42").unwrap(),
            Predicate::col_cmp(0, CmpOp::Eq, -42)
        );
        assert_eq!(
            parse_predicate("#0 = 1.5").unwrap(),
            Predicate::col_cmp(0, CmpOp::Eq, 1.5)
        );
        assert_eq!(
            parse_predicate("#0 = true").unwrap(),
            Predicate::col_cmp(0, CmpOp::Eq, true)
        );
        assert_eq!(
            parse_predicate(r#"#0 = "hi \"there\"""#).unwrap(),
            Predicate::col_cmp(0, CmpOp::Eq, "hi \"there\"")
        );
        assert_eq!(parse_predicate("true").unwrap(), Predicate::True);
        assert_eq!(parse_predicate("false").unwrap(), Predicate::False);
    }

    #[test]
    fn column_to_column_comparison() {
        assert_eq!(
            parse_predicate("#0 <= #3").unwrap(),
            Predicate::col_col(0, CmpOp::Le, 3)
        );
    }

    #[test]
    fn display_round_trips() {
        let exprs = vec![
            Expr::relation("r1")
                .select(
                    Predicate::col_cmp(0, CmpOp::Lt, 5)
                        .and(Predicate::col_cmp(1, CmpOp::Eq, 1.25))
                        .or(Predicate::True.not()),
                )
                .project(vec![1, 0]),
            Expr::relation("a")
                .join(
                    Expr::relation("b").select(Predicate::col_cmp(0, CmpOp::Ne, "x")),
                    vec![(0, 0), (2, 1)],
                )
                .union(Expr::relation("c"))
                .difference(Expr::relation("a").intersect(Expr::relation("c"))),
            Expr::relation("t").select(Predicate::col_col(0, CmpOp::Gt, 1)),
        ];
        for e in &exprs {
            roundtrip(e);
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_expr("select[#1 <](r)").unwrap_err();
        assert!(err.position > 0);
        assert!(parse_expr("").is_err());
        assert!(parse_expr("r extra").is_err());
        assert!(parse_expr("join[#0=#0](a)").is_err());
        assert!(parse_expr("(a union)").is_err());
        assert!(parse_expr("select[#0 = \"oops](r)").is_err());
        assert!(parse_expr("union").is_err());
    }

    #[test]
    fn whitespace_is_insignificant() {
        let a = parse_expr("select[ #1 <  5 ] ( r )").unwrap();
        let b = parse_expr("select[#1<5](r)").unwrap();
        assert_eq!(a, b);
    }
}
