//! The Principle of Inclusion–Exclusion rewrite.
//!
//! Section 2 of the paper: "We first transform `COUNT(E)` into
//! `Σᵢ COUNT(Eᵢ')` using the Principle of Inclusion and Exclusion,
//! where `Eᵢ'` is an RA expression containing only Select, Join,
//! Intersect and Project operations" — so union and difference never
//! have to be estimated directly ("union and difference operations
//! are replaced by the intersection operation").
//!
//! ## Method
//!
//! We expand the *indicator function* of the expression as a signed
//! polynomial over indicator products. Writing `1_E(t)` for "tuple
//! `t` is in the output of `E`", set algebra gives
//!
//! ```text
//! 1_{A ∪ B} = 1_A + 1_B − 1_A·1_B
//! 1_{A − B} = 1_A − 1_A·1_B
//! 1_{A ∩ B} = 1_A·1_B
//! ```
//!
//! and a product of indicators is the indicator of an intersection.
//! Summing over the tuple domain turns each monomial into a `COUNT`
//! of a union/difference-free expression, handling arbitrarily nested
//! set operations (the textbook two-term identities
//! `COUNT(A∪B) = COUNT(A)+COUNT(B)−COUNT(A∩B)` and
//! `COUNT(A−B) = COUNT(A)−COUNT(A∩B)` are the degenerate cases).
//! Like terms are collected, so e.g. `COUNT(A − A)` rewrites to the
//! empty sum.
//!
//! Selection distributes through the polynomial
//! (`σ_p(E)` intersects `E` with the fixed set of `p`-satisfying
//! tuples, and intersection is the polynomial product); join of two
//! polynomials is the cross product of their terms. Projection is
//! *not* linear — `π(A−B) ≠ π(A)−π(B)` under set semantics — so we
//! first push projections through unions (where `π(A∪B) = πA ∪ πB`
//! does hold) and reject the remaining unsound cases with
//! [`ExprError::ProjectionOverSetOp`]. The paper's query class
//! (Select–Join–Intersect–Project bodies with set operations combined
//! by PIE) never hits that case.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::expr::{Expr, ExprError};

/// One signed term of the rewrite: `coefficient · COUNT(expr)` where
/// `expr` contains only Select/Join/Intersect/Project.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountTerm {
    /// Signed integer coefficient (±1 for the classic identities;
    /// larger magnitudes can arise from deep nesting before like-term
    /// collection, never after).
    pub coefficient: i64,
    /// The union/difference-free expression to estimate.
    pub expr: Expr,
}

/// The result of rewriting `COUNT(E)`: `Σᵢ coefficientᵢ · COUNT(exprᵢ)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PieRewrite {
    /// The signed terms. Empty when the rewrite proves the count is 0.
    pub terms: Vec<CountTerm>,
}

impl PieRewrite {
    /// Rewrites `COUNT(expr)` into a signed sum of union/difference-
    /// free counts.
    pub fn rewrite(expr: &Expr) -> Result<PieRewrite, ExprError> {
        let pushed = push_project_through_union(expr.clone());
        let poly = expand(&pushed)?;
        let mut terms: Vec<CountTerm> = poly
            .into_iter()
            .filter(|(_, c)| *c != 0)
            .map(|(atoms, coefficient)| CountTerm {
                coefficient,
                expr: fold_intersection(atoms),
            })
            .collect();
        // Deterministic order: positive high-coefficient terms first,
        // then by expression; keeps reports and tests stable.
        terms.sort_by(|a, b| {
            b.coefficient
                .cmp(&a.coefficient)
                .then_with(|| a.expr.cmp(&b.expr))
        });
        Ok(PieRewrite { terms })
    }

    /// True if the original expression needed no rewriting (single
    /// positive term equal to the input, modulo projection pushing).
    pub fn is_trivial(&self) -> bool {
        self.terms.len() == 1 && self.terms[0].coefficient == 1
    }

    /// The single `+1` term of a trivial rewrite — the form
    /// non-additive aggregates (AVG, GROUP BY) require, since their
    /// per-partition statistics cannot be combined across
    /// inclusion–exclusion terms. `None` when the rewrite is not
    /// trivial.
    pub fn single_term(&self) -> Option<&CountTerm> {
        if self.is_trivial() {
            self.terms.first()
        } else {
            None
        }
    }
}

/// A monomial: the (sorted, deduplicated) set of intersected atoms.
type Atoms = Vec<Expr>;
/// A polynomial: monomial → integer coefficient.
type Poly = BTreeMap<Atoms, i64>;

/// `π(A ∪ B) → π(A) ∪ π(B)`, applied bottom-up everywhere.
fn push_project_through_union(expr: Expr) -> Expr {
    match expr {
        Expr::Relation(_) => expr,
        Expr::Select { input, predicate } => Expr::Select {
            input: Box::new(push_project_through_union(*input)),
            predicate,
        },
        Expr::Project { input, columns } => {
            let input = push_project_through_union(*input);
            if let Expr::Union { left, right } = input {
                let l = push_project_through_union(Expr::Project {
                    input: left,
                    columns: columns.clone(),
                });
                let r = push_project_through_union(Expr::Project {
                    input: right,
                    columns,
                });
                Expr::Union {
                    left: Box::new(l),
                    right: Box::new(r),
                }
            } else {
                Expr::Project {
                    input: Box::new(input),
                    columns,
                }
            }
        }
        Expr::Join { left, right, on } => Expr::Join {
            left: Box::new(push_project_through_union(*left)),
            right: Box::new(push_project_through_union(*right)),
            on,
        },
        Expr::Union { left, right } => Expr::Union {
            left: Box::new(push_project_through_union(*left)),
            right: Box::new(push_project_through_union(*right)),
        },
        Expr::Difference { left, right } => Expr::Difference {
            left: Box::new(push_project_through_union(*left)),
            right: Box::new(push_project_through_union(*right)),
        },
        Expr::Intersect { left, right } => Expr::Intersect {
            left: Box::new(push_project_through_union(*left)),
            right: Box::new(push_project_through_union(*right)),
        },
    }
}

fn singleton(expr: Expr) -> Poly {
    let mut p = Poly::new();
    p.insert(vec![expr], 1);
    p
}

fn add_term(poly: &mut Poly, atoms: Atoms, coeff: i64) {
    let entry = poly.entry(atoms).or_insert(0);
    *entry += coeff;
    // Keep the map small: drop cancelled terms eagerly.
    // (BTreeMap::entry gives us no remove-in-place; do it lazily at
    // the end — cancelled terms are filtered in `rewrite`.)
}

fn poly_add(a: Poly, b: &Poly, sign: i64) -> Poly {
    let mut out = a;
    for (atoms, c) in b {
        add_term(&mut out, atoms.clone(), c * sign);
    }
    out
}

fn poly_mul(a: &Poly, b: &Poly) -> Poly {
    let mut out = Poly::new();
    for (aa, ca) in a {
        for (ab, cb) in b {
            let mut atoms: Atoms = aa.iter().chain(ab.iter()).cloned().collect();
            atoms.sort();
            atoms.dedup();
            add_term(&mut out, atoms, ca * cb);
        }
    }
    out
}

/// Collapses every monomial of `p` into a single atom via `f`.
fn map_atoms(p: Poly, f: impl Fn(Expr) -> Expr) -> Poly {
    let mut out = Poly::new();
    for (atoms, c) in p {
        add_term(&mut out, vec![f(fold_intersection(atoms))], c);
    }
    out
}

/// Rebuilds the intersection expression of a monomial's atoms.
fn fold_intersection(atoms: Atoms) -> Expr {
    let mut iter = atoms.into_iter();
    let first = iter.next().expect("monomials are non-empty");
    iter.fold(first, |acc, atom| acc.intersect(atom))
}

fn expand(expr: &Expr) -> Result<Poly, ExprError> {
    match expr {
        Expr::Relation(_) => Ok(singleton(expr.clone())),
        Expr::Select { input, predicate } => {
            // σ_p(Σ cᵢ Tᵢ) = Σ cᵢ σ_p(Tᵢ): selection intersects with a
            // fixed set, which distributes over the signed sum.
            let p = expand(input)?;
            let predicate = predicate.clone();
            Ok(map_atoms(p, move |atom| atom.select(predicate.clone())))
        }
        Expr::Project { input, columns } => {
            let p = expand(input)?;
            if p.len() > 1 || p.values().any(|&c| c != 1) {
                // π over a non-trivial signed sum is unsound
                // (difference/intersection below a projection).
                return Err(ExprError::ProjectionOverSetOp);
            }
            let columns = columns.clone();
            Ok(map_atoms(p, move |atom| atom.project(columns.clone())))
        }
        Expr::Join { left, right, on } => {
            // (Σ cᵢ Tᵢ) ⋈ (Σ dⱼ Sⱼ) = Σᵢⱼ cᵢdⱼ (Tᵢ ⋈ Sⱼ): a joined pair
            // lies in the output iff its halves lie in the operands.
            let pl = expand(left)?;
            let pr = expand(right)?;
            let mut out = Poly::new();
            for (la, lc) in &pl {
                for (ra, rc) in &pr {
                    let atom = fold_intersection(la.clone())
                        .join(fold_intersection(ra.clone()), on.clone());
                    add_term(&mut out, vec![atom], lc * rc);
                }
            }
            Ok(out)
        }
        Expr::Union { left, right } => {
            let pl = expand(left)?;
            let pr = expand(right)?;
            let both = poly_mul(&pl, &pr);
            Ok(poly_add(poly_add(pl, &pr, 1), &both, -1))
        }
        Expr::Difference { left, right } => {
            let pl = expand(left)?;
            let pr = expand(right)?;
            let both = poly_mul(&pl, &pr);
            Ok(poly_add(pl, &both, -1))
        }
        Expr::Intersect { left, right } => {
            let pl = expand(left)?;
            let pr = expand(right)?;
            Ok(poly_mul(&pl, &pr))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};

    fn a() -> Expr {
        Expr::relation("a")
    }
    fn b() -> Expr {
        Expr::relation("b")
    }
    fn c() -> Expr {
        Expr::relation("c")
    }

    fn coeffs(r: &PieRewrite) -> Vec<i64> {
        r.terms.iter().map(|t| t.coefficient).collect()
    }

    #[test]
    fn sji_expression_is_trivial() {
        let e = a()
            .select(Predicate::col_cmp(0, CmpOp::Gt, 0))
            .intersect(b());
        let r = PieRewrite::rewrite(&e).unwrap();
        assert!(r.is_trivial());
        assert!(!r.terms[0].expr.contains_union_or_difference());
        let term = r.single_term().expect("trivial rewrite has one term");
        assert_eq!(term.coefficient, 1);
        assert_eq!(&term.expr, &r.terms[0].expr);
    }

    #[test]
    fn union_gives_classic_three_terms() {
        let r = PieRewrite::rewrite(&a().union(b())).unwrap();
        assert_eq!(coeffs(&r), vec![1, 1, -1]);
        assert!(r.single_term().is_none(), "non-trivial rewrite");
        let negative = &r.terms[2].expr;
        assert_eq!(negative, &a().intersect(b()));
    }

    #[test]
    fn difference_gives_two_terms() {
        let r = PieRewrite::rewrite(&a().difference(b())).unwrap();
        assert_eq!(coeffs(&r), vec![1, -1]);
        assert_eq!(r.terms[1].expr, a().intersect(b()));
    }

    #[test]
    fn no_term_contains_union_or_difference() {
        let e = a().union(b()).difference(c()).union(a().intersect(c()));
        let r = PieRewrite::rewrite(&e).unwrap();
        assert!(!r.terms.is_empty());
        for t in &r.terms {
            assert!(!t.expr.contains_union_or_difference(), "{}", t.expr);
        }
    }

    #[test]
    fn self_difference_cancels_to_empty() {
        let r = PieRewrite::rewrite(&a().difference(a())).unwrap();
        assert!(r.terms.is_empty());
    }

    #[test]
    fn idempotent_union_collapses() {
        // a ∪ a: 1_a + 1_a − 1_a·1_a = 1_a.
        let r = PieRewrite::rewrite(&a().union(a())).unwrap();
        assert_eq!(r.terms.len(), 1);
        assert_eq!(r.terms[0].coefficient, 1);
        assert_eq!(r.terms[0].expr, a());
    }

    #[test]
    fn selection_distributes_into_terms() {
        let p = Predicate::col_cmp(0, CmpOp::Lt, 5);
        let e = a().union(b()).select(p.clone());
        let r = PieRewrite::rewrite(&e).unwrap();
        assert_eq!(coeffs(&r), vec![1, 1, -1]);
        for t in &r.terms {
            assert!(matches!(t.expr, Expr::Select { .. }), "{}", t.expr);
        }
    }

    #[test]
    fn join_of_unions_cross_multiplies() {
        let e = a().union(b()).join(c(), vec![(0, 0)]);
        let r = PieRewrite::rewrite(&e).unwrap();
        // (a∪b)⋈c → a⋈c + b⋈c − (a∩b)⋈c.
        assert_eq!(coeffs(&r), vec![1, 1, -1]);
        for t in &r.terms {
            assert!(matches!(t.expr, Expr::Join { .. }));
        }
    }

    #[test]
    fn projection_pushes_through_union() {
        let e = a().union(b()).project(vec![0]);
        let r = PieRewrite::rewrite(&e).unwrap();
        // π(a∪b) = πa ∪ πb → COUNT(πa) + COUNT(πb) − COUNT(πa ∩ πb).
        assert_eq!(coeffs(&r), vec![1, 1, -1]);
        assert!(matches!(r.terms[0].expr, Expr::Project { .. }));
        assert!(matches!(r.terms[1].expr, Expr::Project { .. }));
        assert_eq!(
            r.terms[2].expr,
            a().project(vec![0]).intersect(b().project(vec![0]))
        );
    }

    #[test]
    fn projection_over_difference_is_rejected() {
        let e = a().difference(b()).project(vec![0]);
        assert_eq!(PieRewrite::rewrite(&e), Err(ExprError::ProjectionOverSetOp));
    }

    #[test]
    fn nested_unions_collect_like_terms() {
        // (a ∪ b) ∪ a should equal a ∪ b.
        let r1 = PieRewrite::rewrite(&a().union(b()).union(a())).unwrap();
        let r2 = PieRewrite::rewrite(&a().union(b())).unwrap();
        assert_eq!(r1, r2);
    }
}
