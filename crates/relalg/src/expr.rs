//! The relational-algebra expression AST.
//!
//! The paper's query language is relational algebra over six
//! operators: Select, Project, Join (equi-join), Union, Difference,
//! and Intersect. `COUNT(E)` queries over arbitrary such `E` are the
//! object of the whole system.

use serde::{Deserialize, Serialize};

use eram_storage::Schema;

use crate::catalog::Catalog;
use crate::predicate::Predicate;

/// Errors from building or validating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprError {
    /// A leaf referenced a relation name the catalog does not know.
    UnknownRelation(String),
    /// A column index exceeded the input arity.
    ColumnOutOfRange {
        /// Offending index.
        column: usize,
        /// Input arity.
        arity: usize,
    },
    /// Set-operation operands are not degree/attribute compatible.
    IncompatibleSchemas(String),
    /// A projection list was empty.
    EmptyProjection,
    /// An equi-join had no join attributes.
    EmptyJoinKeys,
    /// The inclusion–exclusion rewrite cannot soundly distribute a
    /// projection over difference/intersection (set cardinality is not
    /// preserved); the paper's query class does not require it.
    ProjectionOverSetOp,
}

impl std::fmt::Display for ExprError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExprError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            ExprError::ColumnOutOfRange { column, arity } => {
                write!(f, "column #{column} out of range for arity {arity}")
            }
            ExprError::IncompatibleSchemas(msg) => {
                write!(f, "incompatible schemas for set operation: {msg}")
            }
            ExprError::EmptyProjection => write!(f, "projection list must not be empty"),
            ExprError::EmptyJoinKeys => write!(f, "equi-join needs at least one key pair"),
            ExprError::ProjectionOverSetOp => write!(
                f,
                "cannot rewrite: projection above difference/intersection \
                 does not distribute under set semantics"
            ),
        }
    }
}

impl std::error::Error for ExprError {}

/// The kind of an operator node (for selectivity tracking and cost
/// formulas, which are per-operator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Selection.
    Select,
    /// Projection (duplicate-eliminating).
    Project,
    /// Equi-join.
    Join,
    /// Set union.
    Union,
    /// Set difference.
    Difference,
    /// Set intersection.
    Intersect,
}

/// A relational-algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A named base relation.
    Relation(String),
    /// `σ_predicate(input)`.
    Select {
        /// Input expression.
        input: Box<Expr>,
        /// Selection formula.
        predicate: Predicate,
    },
    /// `π_columns(input)` with duplicate elimination (set semantics).
    Project {
        /// Input expression.
        input: Box<Expr>,
        /// Output columns, by input index, in output order.
        columns: Vec<usize>,
    },
    /// Equi-join on pairs `(left column, right column)`.
    Join {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
        /// Join key pairs.
        on: Vec<(usize, usize)>,
    },
    /// `left ∪ right`.
    Union {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `left − right`.
    Difference {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
    /// `left ∩ right`.
    Intersect {
        /// Left input.
        left: Box<Expr>,
        /// Right input.
        right: Box<Expr>,
    },
}

impl Expr {
    /// A base-relation leaf.
    pub fn relation(name: impl Into<String>) -> Expr {
        Expr::Relation(name.into())
    }

    /// Wraps this expression in a selection.
    pub fn select(self, predicate: Predicate) -> Expr {
        Expr::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// Wraps this expression in a projection.
    pub fn project(self, columns: Vec<usize>) -> Expr {
        Expr::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Equi-joins this expression with `right`.
    pub fn join(self, right: Expr, on: Vec<(usize, usize)>) -> Expr {
        Expr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// Unions this expression with `right`.
    pub fn union(self, right: Expr) -> Expr {
        Expr::Union {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Subtracts `right` from this expression.
    pub fn difference(self, right: Expr) -> Expr {
        Expr::Difference {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Intersects this expression with `right`.
    pub fn intersect(self, right: Expr) -> Expr {
        Expr::Intersect {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// The operator kind of this node (`None` for leaves).
    pub fn op_kind(&self) -> Option<OpKind> {
        match self {
            Expr::Relation(_) => None,
            Expr::Select { .. } => Some(OpKind::Select),
            Expr::Project { .. } => Some(OpKind::Project),
            Expr::Join { .. } => Some(OpKind::Join),
            Expr::Union { .. } => Some(OpKind::Union),
            Expr::Difference { .. } => Some(OpKind::Difference),
            Expr::Intersect { .. } => Some(OpKind::Intersect),
        }
    }

    /// Child expressions, left to right.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Relation(_) => vec![],
            Expr::Select { input, .. } | Expr::Project { input, .. } => vec![input],
            Expr::Join { left, right, .. }
            | Expr::Union { left, right }
            | Expr::Difference { left, right }
            | Expr::Intersect { left, right } => vec![left, right],
        }
    }

    /// Base-relation names in left-to-right leaf order (with repeats —
    /// each occurrence is its own dimension of the point space).
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        if let Expr::Relation(name) = self {
            out.push(name);
        }
        for c in self.children() {
            c.collect_relations(out);
        }
    }

    /// True if the expression contains a projection anywhere
    /// (COUNT then needs Goodman's estimator).
    pub fn contains_projection(&self) -> bool {
        matches!(self, Expr::Project { .. })
            || self.children().iter().any(|c| c.contains_projection())
    }

    /// True if the expression contains union or difference anywhere
    /// (COUNT then needs the inclusion–exclusion rewrite first).
    pub fn contains_union_or_difference(&self) -> bool {
        matches!(self, Expr::Union { .. } | Expr::Difference { .. })
            || self
                .children()
                .iter()
                .any(|c| c.contains_union_or_difference())
    }

    /// Number of operator nodes (excluding leaves).
    pub fn num_operators(&self) -> usize {
        let own = usize::from(self.op_kind().is_some());
        own + self
            .children()
            .iter()
            .map(|c| c.num_operators())
            .sum::<usize>()
    }

    /// Infers the output schema and validates the whole expression
    /// against `catalog`.
    pub fn output_schema(&self, catalog: &Catalog) -> Result<Schema, ExprError> {
        match self {
            Expr::Relation(name) => catalog
                .schema_of(name)
                .cloned()
                .ok_or_else(|| ExprError::UnknownRelation(name.clone())),
            Expr::Select { input, predicate } => {
                let schema = input.output_schema(catalog)?;
                predicate.validate(&schema)?;
                Ok(schema)
            }
            Expr::Project { input, columns } => {
                if columns.is_empty() {
                    return Err(ExprError::EmptyProjection);
                }
                let schema = input.output_schema(catalog)?;
                for &c in columns {
                    if c >= schema.arity() {
                        return Err(ExprError::ColumnOutOfRange {
                            column: c,
                            arity: schema.arity(),
                        });
                    }
                }
                Ok(schema.project(columns))
            }
            Expr::Join { left, right, on } => {
                if on.is_empty() {
                    return Err(ExprError::EmptyJoinKeys);
                }
                let ls = left.output_schema(catalog)?;
                let rs = right.output_schema(catalog)?;
                for &(l, r) in on {
                    if l >= ls.arity() {
                        return Err(ExprError::ColumnOutOfRange {
                            column: l,
                            arity: ls.arity(),
                        });
                    }
                    if r >= rs.arity() {
                        return Err(ExprError::ColumnOutOfRange {
                            column: r,
                            arity: rs.arity(),
                        });
                    }
                    if ls.columns()[l].ty != rs.columns()[r].ty {
                        return Err(ExprError::IncompatibleSchemas(format!(
                            "join key types differ at pair (#{l}, #{r})"
                        )));
                    }
                }
                Ok(ls.concat(&rs))
            }
            Expr::Union { left, right }
            | Expr::Difference { left, right }
            | Expr::Intersect { left, right } => {
                let ls = left.output_schema(catalog)?;
                let rs = right.output_schema(catalog)?;
                if !ls.compatible_with(&rs) {
                    return Err(ExprError::IncompatibleSchemas(format!(
                        "arity {} vs {}",
                        ls.arity(),
                        rs.arity()
                    )));
                }
                Ok(ls)
            }
        }
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Relation(name) => write!(f, "{name}"),
            Expr::Select { input, predicate } => write!(f, "select[{predicate}]({input})"),
            Expr::Project { input, columns } => {
                write!(f, "project[")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "#{c}")?;
                }
                write!(f, "]({input})")
            }
            Expr::Join { left, right, on } => {
                write!(f, "join[")?;
                for (i, (l, r)) in on.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "#{l}=#{r}")?;
                }
                write!(f, "]({left}, {right})")
            }
            Expr::Union { left, right } => write!(f, "({left} union {right})"),
            Expr::Difference { left, right } => write!(f, "({left} minus {right})"),
            Expr::Intersect { left, right } => write!(f, "({left} intersect {right})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use eram_storage::{ColumnType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_schema(
            "r1",
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]),
        );
        c.register_schema(
            "r2",
            Schema::new(vec![("x", ColumnType::Int), ("y", ColumnType::Int)]),
        );
        c.register_schema("s", Schema::new(vec![("k", ColumnType::Bool)]));
        c
    }

    #[test]
    fn schema_inference_for_every_operator() {
        let c = catalog();
        let r1 = Expr::relation("r1");
        let r2 = Expr::relation("r2");

        assert_eq!(
            r1.clone()
                .select(Predicate::col_cmp(0, CmpOp::Gt, 1))
                .output_schema(&c)
                .unwrap()
                .arity(),
            2
        );
        assert_eq!(
            r1.clone()
                .project(vec![1])
                .output_schema(&c)
                .unwrap()
                .arity(),
            1
        );
        assert_eq!(
            r1.clone()
                .join(r2.clone(), vec![(0, 0)])
                .output_schema(&c)
                .unwrap()
                .arity(),
            4
        );
        assert_eq!(
            r1.clone()
                .union(r2.clone())
                .output_schema(&c)
                .unwrap()
                .arity(),
            2
        );
        assert_eq!(
            r1.clone()
                .difference(r2.clone())
                .output_schema(&c)
                .unwrap()
                .arity(),
            2
        );
        assert_eq!(r1.intersect(r2).output_schema(&c).unwrap().arity(), 2);
    }

    #[test]
    fn validation_errors() {
        let c = catalog();
        assert!(matches!(
            Expr::relation("nope").output_schema(&c),
            Err(ExprError::UnknownRelation(_))
        ));
        assert!(matches!(
            Expr::relation("r1").project(vec![5]).output_schema(&c),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
        assert!(matches!(
            Expr::relation("r1").project(vec![]).output_schema(&c),
            Err(ExprError::EmptyProjection)
        ));
        assert!(matches!(
            Expr::relation("r1")
                .join(Expr::relation("r2"), vec![])
                .output_schema(&c),
            Err(ExprError::EmptyJoinKeys)
        ));
        assert!(matches!(
            Expr::relation("r1")
                .union(Expr::relation("s"))
                .output_schema(&c),
            Err(ExprError::IncompatibleSchemas(_))
        ));
        assert!(matches!(
            Expr::relation("r1")
                .select(Predicate::col_cmp(9, CmpOp::Eq, 0))
                .output_schema(&c),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn structural_queries() {
        let e = Expr::relation("r1")
            .join(Expr::relation("r2"), vec![(0, 0)])
            .select(Predicate::True)
            .union(
                Expr::relation("r1")
                    .project(vec![0])
                    .join(Expr::relation("r2").project(vec![0]), vec![(0, 0)]),
            );
        assert_eq!(e.base_relations(), vec!["r1", "r2", "r1", "r2"]);
        assert!(e.contains_projection());
        assert!(e.contains_union_or_difference());
        assert_eq!(e.num_operators(), 6);
    }

    #[test]
    fn display_round_trips_structure() {
        let e = Expr::relation("r1")
            .select(Predicate::col_cmp(0, CmpOp::Lt, 3))
            .intersect(Expr::relation("r2"));
        assert_eq!(e.to_string(), "(select[#0 < 3](r1) intersect r2)");
    }

    #[test]
    fn join_type_mismatch_detected() {
        let c = catalog();
        let e = Expr::relation("r1").join(Expr::relation("s"), vec![(0, 0)]);
        assert!(matches!(
            e.output_schema(&c),
            Err(ExprError::IncompatibleSchemas(_))
        ));
    }
}
