//! Algebraic rewrites: selection pushdown.
//!
//! The paper evaluates queries as written — its contribution is
//! *when to stop*, not plan choice — but any DBMS built on it would
//! normalize expressions first, and pushdown matters more than usual
//! here: a selection that reaches the operand relations shrinks every
//! sorted run the full-fulfillment plan re-merges at every stage.
//!
//! [`push_selections`] applies the classic sound rewrites bottom-up:
//!
//! * `σ_p(A ∪ B) = σ_p(A) ∪ σ_p(B)` (likewise `−`, `∩`);
//! * `σ_p(A ⋈ B)`: split `p`'s conjuncts by the columns they touch
//!   and send left-only / right-only conjuncts below the join;
//! * adjacent selections merge (`σ_p(σ_q(A)) = σ_{p∧q}(A)`).
//!
//! `COUNT`/`SUM`/`AVG` over the rewritten expression are identical to
//! the original (verified by property test against the exact
//! evaluator).

use crate::expr::Expr;
use crate::predicate::{Operand, Predicate};

/// The largest column index a predicate references, if any.
fn max_column(p: &Predicate) -> Option<usize> {
    match p {
        Predicate::True | Predicate::False => None,
        Predicate::Compare { left, right, .. } => {
            let of = |o: &Operand| match o {
                Operand::Column(c) => Some(*c),
                Operand::Const(_) => None,
            };
            of(left).into_iter().chain(of(right)).max()
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => max_column(a).max(max_column(b)),
        Predicate::Not(a) => max_column(a),
    }
}

/// The smallest column index a predicate references, if any.
fn min_column(p: &Predicate) -> Option<usize> {
    match p {
        Predicate::True | Predicate::False => None,
        Predicate::Compare { left, right, .. } => {
            let of = |o: &Operand| match o {
                Operand::Column(c) => Some(*c),
                Operand::Const(_) => None,
            };
            match (of(left), of(right)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => match (min_column(a), min_column(b)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        },
        Predicate::Not(a) => min_column(a),
    }
}

/// Flattens a predicate into its top-level conjuncts.
fn conjuncts(p: Predicate, out: &mut Vec<Predicate>) {
    match p {
        Predicate::And(a, b) => {
            conjuncts(*a, out);
            conjuncts(*b, out);
        }
        other => out.push(other),
    }
}

fn conjoin(parts: Vec<Predicate>) -> Predicate {
    let mut iter = parts.into_iter();
    match iter.next() {
        None => Predicate::True,
        Some(first) => iter.fold(first, |acc, p| acc.and(p)),
    }
}

/// Shifts every column reference in `p` down by `offset` (for moving
/// a right-side conjunct below a join).
fn shift_columns(p: Predicate, offset: usize) -> Predicate {
    let shift_operand = |o: Operand| match o {
        Operand::Column(c) => Operand::Column(c - offset),
        konst => konst,
    };
    match p {
        Predicate::True => Predicate::True,
        Predicate::False => Predicate::False,
        Predicate::Compare { left, op, right } => Predicate::Compare {
            left: shift_operand(left),
            op,
            right: shift_operand(right),
        },
        Predicate::And(a, b) => shift_columns(*a, offset).and(shift_columns(*b, offset)),
        Predicate::Or(a, b) => shift_columns(*a, offset).or(shift_columns(*b, offset)),
        Predicate::Not(a) => shift_columns(*a, offset).not(),
    }
}

/// Pushes selections toward the leaves (see module docs). The
/// rewrite needs the left input's arity to split join predicates;
/// since arity is derivable from structure alone for every operator,
/// no catalog is needed — except that a bare `Relation` leaf's arity
/// is unknown, so the caller provides a lookup.
pub fn push_selections(expr: Expr, arity_of: &dyn Fn(&str) -> Option<usize>) -> Expr {
    match expr {
        Expr::Relation(_) => expr,
        Expr::Select { input, predicate } => {
            let input = push_selections(*input, arity_of);
            push_one_selection(input, predicate, arity_of)
        }
        Expr::Project { input, columns } => Expr::Project {
            input: Box::new(push_selections(*input, arity_of)),
            columns,
        },
        Expr::Join { left, right, on } => Expr::Join {
            left: Box::new(push_selections(*left, arity_of)),
            right: Box::new(push_selections(*right, arity_of)),
            on,
        },
        Expr::Union { left, right } => Expr::Union {
            left: Box::new(push_selections(*left, arity_of)),
            right: Box::new(push_selections(*right, arity_of)),
        },
        Expr::Difference { left, right } => Expr::Difference {
            left: Box::new(push_selections(*left, arity_of)),
            right: Box::new(push_selections(*right, arity_of)),
        },
        Expr::Intersect { left, right } => Expr::Intersect {
            left: Box::new(push_selections(*left, arity_of)),
            right: Box::new(push_selections(*right, arity_of)),
        },
    }
}

/// Output arity of an already-pushed expression, if derivable.
fn arity(expr: &Expr, arity_of: &dyn Fn(&str) -> Option<usize>) -> Option<usize> {
    match expr {
        Expr::Relation(name) => arity_of(name),
        Expr::Select { input, .. } => arity(input, arity_of),
        Expr::Project { columns, .. } => Some(columns.len()),
        Expr::Join { left, right, .. } => Some(arity(left, arity_of)? + arity(right, arity_of)?),
        Expr::Union { left, .. } | Expr::Difference { left, .. } | Expr::Intersect { left, .. } => {
            arity(left, arity_of)
        }
    }
}

fn push_one_selection(
    input: Expr,
    predicate: Predicate,
    arity_of: &dyn Fn(&str) -> Option<usize>,
) -> Expr {
    match input {
        // σ_p(σ_q(A)) = σ_{q ∧ p}(A), then retry on the merged form.
        Expr::Select {
            input: inner,
            predicate: q,
        } => push_one_selection(*inner, q.and(predicate), arity_of),
        // Selection distributes over every set operation.
        Expr::Union { left, right } => Expr::Union {
            left: Box::new(push_one_selection(*left, predicate.clone(), arity_of)),
            right: Box::new(push_one_selection(*right, predicate, arity_of)),
        },
        Expr::Difference { left, right } => Expr::Difference {
            left: Box::new(push_one_selection(*left, predicate.clone(), arity_of)),
            right: Box::new(push_one_selection(*right, predicate, arity_of)),
        },
        Expr::Intersect { left, right } => Expr::Intersect {
            left: Box::new(push_one_selection(*left, predicate.clone(), arity_of)),
            right: Box::new(push_one_selection(*right, predicate, arity_of)),
        },
        // Join: split conjuncts by side.
        Expr::Join { left, right, on } => {
            let Some(left_arity) = arity(&left, arity_of) else {
                // Unknown arity: keep the selection above the join.
                return Expr::Join { left, right, on }.select(predicate);
            };
            let mut parts = Vec::new();
            conjuncts(predicate, &mut parts);
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stay = Vec::new();
            for p in parts {
                match (min_column(&p), max_column(&p)) {
                    (_, Some(max)) if max < left_arity => to_left.push(p),
                    (Some(min), _) if min >= left_arity => {
                        to_right.push(shift_columns(p, left_arity))
                    }
                    // Column-free (True/False/const-const) conjuncts
                    // stay above; cross-side conjuncts must too.
                    _ => stay.push(p),
                }
            }
            let mut left = *left;
            if !to_left.is_empty() {
                left = push_one_selection(left, conjoin(to_left), arity_of);
            }
            let mut right = *right;
            if !to_right.is_empty() {
                right = push_one_selection(right, conjoin(to_right), arity_of);
            }
            let joined = left.join(right, on);
            if stay.is_empty() {
                joined
            } else {
                joined.select(conjoin(stay))
            }
        }
        // Leaves and projections absorb the selection in place.
        other => other.select(predicate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn arity2(_: &str) -> Option<usize> {
        Some(2)
    }

    #[test]
    fn merges_adjacent_selections() {
        let p = Predicate::col_cmp(0, CmpOp::Lt, 5);
        let q = Predicate::col_cmp(1, CmpOp::Gt, 2);
        let e = Expr::relation("r").select(q.clone()).select(p.clone());
        let out = push_selections(e, &arity2);
        assert_eq!(out, Expr::relation("r").select(q.and(p)));
    }

    #[test]
    fn distributes_over_set_ops() {
        let p = Predicate::col_cmp(0, CmpOp::Eq, 1);
        let e = Expr::relation("a")
            .union(Expr::relation("b"))
            .select(p.clone());
        let out = push_selections(e, &arity2);
        assert_eq!(
            out,
            Expr::relation("a")
                .select(p.clone())
                .union(Expr::relation("b").select(p))
        );
    }

    #[test]
    fn splits_join_conjuncts_by_side() {
        // a(0,1) ⋈ b(2,3): #1 < 5 goes left, #3 > 2 goes right
        // (shifted to #1), #0 = #2 stays above.
        let p = Predicate::col_cmp(1, CmpOp::Lt, 5)
            .and(Predicate::col_cmp(3, CmpOp::Gt, 2))
            .and(Predicate::col_col(0, CmpOp::Eq, 2));
        let e = Expr::relation("a")
            .join(Expr::relation("b"), vec![(0, 0)])
            .select(p);
        let out = push_selections(e, &arity2);
        let expected = Expr::relation("a")
            .select(Predicate::col_cmp(1, CmpOp::Lt, 5))
            .join(
                Expr::relation("b").select(Predicate::col_cmp(1, CmpOp::Gt, 2)),
                vec![(0, 0)],
            )
            .select(Predicate::col_col(0, CmpOp::Eq, 2));
        assert_eq!(out, expected);
    }

    #[test]
    fn unknown_arity_keeps_selection_above_join() {
        let p = Predicate::col_cmp(0, CmpOp::Lt, 5);
        let e = Expr::relation("a")
            .join(Expr::relation("b"), vec![(0, 0)])
            .select(p.clone());
        let out = push_selections(e.clone(), &|_| None);
        assert_eq!(out, e);
    }

    #[test]
    fn column_free_conjuncts_stay_above() {
        let p = Predicate::False;
        let e = Expr::relation("a")
            .join(Expr::relation("b"), vec![(0, 0)])
            .select(p.clone());
        let out = push_selections(e, &arity2);
        assert_eq!(
            out,
            Expr::relation("a")
                .join(Expr::relation("b"), vec![(0, 0)])
                .select(p)
        );
    }

    #[test]
    fn selection_stays_above_projection() {
        // π narrows columns, so pushing through it would need index
        // remapping; the simple rewrite leaves it alone.
        let p = Predicate::col_cmp(0, CmpOp::Lt, 5);
        let e = Expr::relation("r").project(vec![1]).select(p.clone());
        let out = push_selections(e.clone(), &arity2);
        assert_eq!(out, e);
    }
}
