//! Prestored selectivity statistics: equi-depth histograms.
//!
//! Section 3.1 of the paper contrasts its run-time estimation
//! approach with "prestored selectivities [PSCo 84, Rowe 85,
//! MuDe 88]" — statistics "obtained by pre-evaluating the query with
//! input relations. This approach is simple and may have a very good
//! performance. However, an extra effort is needed to maintain the
//! set of stored selectivities when there are changes to the
//! database... This approach is best suited for database environments
//! where only a fixed set of query types are to be issued."
//!
//! This module implements that alternative so it can be compared
//! against run-time estimation (see the `abl_prestored` experiment):
//! one [`EquiDepthHistogram`] per column (Muralikrishna & DeWitt's
//! SIGMOD 1988 one-dimensional building block), combined under the
//! classic attribute-independence assumption for conjunctions and
//! the `1/max(d₁,d₂)` rule for equi-joins.

use eram_storage::{HeapFile, Tuple, Value};

use crate::expr::{Expr, ExprError};
use crate::predicate::{CmpOp, Operand, Predicate};

/// An equi-depth (equi-height) histogram over one column.
///
/// `k` buckets each holding ≈ `n/k` values; bucket boundaries are the
/// sampled quantiles. Range selectivities interpolate linearly within
/// a bucket; equality selectivities use the per-bucket distinct
/// estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiDepthHistogram {
    /// Bucket upper bounds (inclusive), ascending; `bounds.len()` =
    /// number of buckets.
    bounds: Vec<Value>,
    /// Lower bound of the first bucket (the column minimum).
    min: Value,
    /// Values per bucket.
    depth: f64,
    /// Total values (rows).
    n: f64,
    /// Distinct values per bucket (for equality selectivity).
    distinct_per_bucket: Vec<f64>,
}

impl EquiDepthHistogram {
    /// Builds a `buckets`-bucket histogram from a column's values.
    /// Returns `None` for an empty column.
    ///
    /// # Panics
    /// Panics if `buckets` is zero.
    pub fn build(mut values: Vec<Value>, buckets: usize) -> Option<Self> {
        assert!(buckets > 0, "need at least one bucket");
        if values.is_empty() {
            return None;
        }
        values.sort();
        let n = values.len();
        let buckets = buckets.min(n);
        let depth = n as f64 / buckets as f64;
        let mut bounds = Vec::with_capacity(buckets);
        let mut distinct_per_bucket = Vec::with_capacity(buckets);
        let mut start = 0usize;
        for b in 0..buckets {
            let end = (((b + 1) as f64 * depth).round() as usize).clamp(start + 1, n);
            let slice = &values[start..end];
            let mut distinct = 1.0;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    distinct += 1.0;
                }
            }
            bounds.push(slice[slice.len() - 1].clone());
            distinct_per_bucket.push(distinct);
            start = end;
        }
        Some(EquiDepthHistogram {
            min: values[0].clone(),
            bounds,
            depth,
            n: n as f64,
            distinct_per_bucket,
        })
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len()
    }

    /// Total distinct-value estimate for the column.
    pub fn distinct(&self) -> f64 {
        self.distinct_per_bucket.iter().sum()
    }

    /// Estimated fraction of rows with `column op constant`.
    pub fn selectivity(&self, op: CmpOp, constant: &Value) -> f64 {
        match op {
            CmpOp::Eq => self.eq_fraction(constant),
            CmpOp::Ne => 1.0 - self.eq_fraction(constant),
            CmpOp::Lt => self.less_fraction(constant, false),
            CmpOp::Le => self.less_fraction(constant, true),
            CmpOp::Gt => 1.0 - self.less_fraction(constant, true),
            CmpOp::Ge => 1.0 - self.less_fraction(constant, false),
        }
        .clamp(0.0, 1.0)
    }

    /// Fraction of rows equal to `v`. A frequent value spans several
    /// buckets whose upper bounds all equal `v`; each contributes its
    /// full depth (they hold nothing else), while the bucket `v`
    /// falls strictly inside contributes `depth/distinct`.
    fn eq_fraction(&self, v: &Value) -> f64 {
        if *v < self.min || *v > self.bounds[self.bounds.len() - 1] {
            return 0.0;
        }
        let first = self.bounds.partition_point(|bound| bound < v);
        let last = self.bounds.partition_point(|bound| bound <= v);
        let mut rows = 0.0;
        if first == last {
            // v lies strictly inside bucket `first`.
            let b = first.min(self.bounds.len() - 1);
            rows += self.depth / self.distinct_per_bucket[b].max(1.0);
        } else {
            for b in first..last {
                rows += self.depth / self.distinct_per_bucket[b].max(1.0);
            }
            // v may continue into the lower part of the next bucket.
            if last < self.bounds.len() && self.distinct_per_bucket[last] > 1.0 {
                rows += self.depth / self.distinct_per_bucket[last];
            }
        }
        rows / self.n
    }

    /// Fraction of rows `< v` (or `≤ v` with `inclusive`), with
    /// linear interpolation inside the containing bucket for numeric
    /// columns. Buckets whose upper bound is below `v` contribute
    /// their full depth; a degenerate (single-value) bucket with
    /// `value ≥ v` contributes nothing strictly below `v`.
    fn less_fraction(&self, v: &Value, inclusive: bool) -> f64 {
        if *v < self.min {
            return 0.0;
        }
        let last = &self.bounds[self.bounds.len() - 1];
        let lt = if v > last {
            1.0
        } else {
            let first = self.bounds.partition_point(|bound| bound < v);
            let full = first as f64 * self.depth / self.n;
            let within = if first < self.bounds.len() {
                let lo = if first == 0 {
                    &self.min
                } else {
                    &self.bounds[first - 1]
                };
                let hi = &self.bounds[first];
                match (numeric(lo), numeric(hi), numeric(v)) {
                    (Some(lo), Some(hi), Some(v)) if hi > lo => {
                        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
                    }
                    // Degenerate or non-numeric bucket: every row in
                    // it equals its bound, which is ≥ v.
                    _ => 0.0,
                }
            } else {
                0.0
            };
            (full + within * self.depth / self.n).min(1.0)
        };
        if inclusive {
            (lt + self.eq_fraction(v)).min(1.0)
        } else {
            lt
        }
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(x) => Some(*x as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

/// Prestored statistics for one relation: a histogram per column.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    columns: Vec<Option<EquiDepthHistogram>>,
    n_tuples: f64,
}

impl TableStats {
    /// Scans a stored relation (uncharged — statistics are built at
    /// load time, outside any quota) and builds per-column
    /// histograms.
    pub fn build(file: &HeapFile, buckets: usize) -> Result<TableStats, ExprError> {
        let tuples: Vec<Tuple> = file
            .scan_uncharged()
            .map_err(|e| ExprError::IncompatibleSchemas(e.to_string()))?;
        let arity = file.schema().arity();
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            let values: Vec<Value> = tuples.iter().map(|t| t.value(c).clone()).collect();
            columns.push(EquiDepthHistogram::build(values, buckets));
        }
        Ok(TableStats {
            columns,
            n_tuples: tuples.len() as f64,
        })
    }

    /// The histogram of column `c`, if the column was non-empty.
    pub fn column(&self, c: usize) -> Option<&EquiDepthHistogram> {
        self.columns.get(c).and_then(Option::as_ref)
    }

    /// Rows in the relation.
    pub fn n_tuples(&self) -> f64 {
        self.n_tuples
    }

    /// Estimated selectivity of a predicate over this relation's
    /// tuples, combining atoms under the independence assumption
    /// (`and` multiplies, `or` adds with the inclusion–exclusion
    /// correction, `not` complements).
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        match pred {
            Predicate::True => 1.0,
            Predicate::False => 0.0,
            Predicate::And(a, b) => self.predicate_selectivity(a) * self.predicate_selectivity(b),
            Predicate::Or(a, b) => {
                let sa = self.predicate_selectivity(a);
                let sb = self.predicate_selectivity(b);
                (sa + sb - sa * sb).clamp(0.0, 1.0)
            }
            Predicate::Not(a) => 1.0 - self.predicate_selectivity(a),
            Predicate::Compare { left, op, right } => match (left, right) {
                (Operand::Column(c), Operand::Const(v)) => {
                    self.column(*c).map_or(0.5, |h| h.selectivity(*op, v))
                }
                (Operand::Const(v), Operand::Column(c)) => {
                    self.column(*c).map_or(0.5, |h| h.selectivity(flip(*op), v))
                }
                // Column-to-column or constant-to-constant: fall back
                // to the textbook guesses.
                (Operand::Column(_), Operand::Column(_)) => match op {
                    CmpOp::Eq => 0.1,
                    CmpOp::Ne => 0.9,
                    _ => 0.3,
                },
                (Operand::Const(a), Operand::Const(b)) => {
                    if op.eval_consts(a, b) {
                        1.0
                    } else {
                        0.0
                    }
                }
            },
        }
    }

    /// Classic equi-join selectivity between column `lc` here and
    /// column `rc` of `right`: `1 / max(d_l, d_r)` per key pair.
    pub fn join_selectivity(&self, lc: usize, right: &TableStats, rc: usize) -> f64 {
        let dl = self.column(lc).map_or(1.0, EquiDepthHistogram::distinct);
        let dr = right.column(rc).map_or(1.0, EquiDepthHistogram::distinct);
        1.0 / dl.max(dr).max(1.0)
    }
}

impl CmpOp {
    /// Evaluates the comparison on two constants.
    fn eval_consts(self, a: &Value, b: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = a.cmp(b);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// A catalog of prestored statistics, keyed by relation name.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    stats: std::collections::BTreeMap<String, TableStats>,
}

impl StatsCatalog {
    /// Creates an empty stats catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores statistics for a relation.
    pub fn insert(&mut self, name: impl Into<String>, stats: TableStats) {
        self.stats.insert(name.into(), stats);
    }

    /// Statistics for a relation, if present.
    pub fn get(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// Estimated output-fraction ("selectivity" in the paper's sense:
    /// output tuples over input point-space points) of the top
    /// operator of `expr`, when the operands are base relations with
    /// stored statistics. Returns `None` when statistics are missing
    /// or the operand structure is beyond what the prestored approach
    /// covers — exactly the flexibility gap the paper's run-time
    /// approach was invented for.
    pub fn top_operator_selectivity(&self, expr: &Expr) -> Option<f64> {
        match expr {
            Expr::Select { input, predicate } => {
                let stats = self.base_stats(input)?;
                Some(stats.predicate_selectivity(predicate))
            }
            Expr::Join { left, right, on } => {
                let ls = self.base_stats(left)?;
                let rs = self.base_stats(right)?;
                let mut sel = 1.0;
                for &(lc, rc) in on {
                    sel *= ls.join_selectivity(lc, rs, rc);
                }
                Some(sel)
            }
            Expr::Project { input, columns } => {
                let stats = self.base_stats(input)?;
                // Distinct groups over input tuples, independence
                // across projected columns, capped by row count.
                let mut groups = 1.0;
                for &c in columns {
                    groups *= stats.column(c).map_or(1.0, EquiDepthHistogram::distinct);
                }
                Some((groups.min(stats.n_tuples()) / stats.n_tuples().max(1.0)).min(1.0))
            }
            Expr::Intersect { left, right } => {
                let ls = self.base_stats(left)?;
                let rs = self.base_stats(right)?;
                // Whole-tuple equality: at best one match per tuple
                // pair with the same leading value; approximate with
                // the classic 1/max rule on the full row count.
                Some(1.0 / ls.n_tuples().max(rs.n_tuples()).max(1.0))
            }
            _ => None,
        }
    }

    fn base_stats(&self, expr: &Expr) -> Option<&TableStats> {
        match expr {
            Expr::Relation(name) => self.get(name),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_storage::{ColumnType, DeviceProfile, Disk, Schema, SimClock};
    use std::sync::Arc;

    fn hist_of(values: Vec<i64>, buckets: usize) -> EquiDepthHistogram {
        EquiDepthHistogram::build(values.into_iter().map(Value::Int).collect(), buckets)
            .expect("non-empty")
    }

    #[test]
    fn uniform_range_selectivity_is_linear() {
        let h = hist_of((0..1000).collect(), 20);
        for &(k, expected) in &[(100i64, 0.1), (500, 0.5), (900, 0.9)] {
            let s = h.selectivity(CmpOp::Lt, &Value::Int(k));
            assert!(
                (s - expected).abs() < 0.03,
                "P(x < {k}) = {s}, want ≈ {expected}"
            );
        }
        assert_eq!(h.selectivity(CmpOp::Lt, &Value::Int(-5)), 0.0);
        assert_eq!(h.selectivity(CmpOp::Le, &Value::Int(999)), 1.0);
        assert_eq!(h.selectivity(CmpOp::Ge, &Value::Int(0)), 1.0);
    }

    #[test]
    fn equality_selectivity_uses_distincts() {
        // 1000 rows over 100 distinct values (10 copies each).
        let h = hist_of((0..1000).map(|i| i % 100).collect(), 10);
        let s = h.selectivity(CmpOp::Eq, &Value::Int(42));
        assert!((s - 0.01).abs() < 0.005, "P(x = 42) = {s}, want ≈ 0.01");
        assert_eq!(h.selectivity(CmpOp::Eq, &Value::Int(5_000)), 0.0);
        assert!((h.distinct() - 100.0).abs() < 10.0);
    }

    #[test]
    fn skewed_data_still_sums_to_one() {
        // Heavy skew: half the rows are 0.
        let mut vals: Vec<i64> = vec![0; 500];
        vals.extend(0..500);
        let h = hist_of(vals, 20);
        let lt = h.selectivity(CmpOp::Lt, &Value::Int(10));
        let ge = h.selectivity(CmpOp::Ge, &Value::Int(10));
        assert!((lt + ge - 1.0).abs() < 1e-9);
        assert!(lt > 0.5, "half the mass sits at 0: {lt}");
    }

    #[test]
    fn empty_column_gives_no_histogram() {
        assert!(EquiDepthHistogram::build(vec![], 8).is_none());
    }

    #[test]
    fn table_stats_and_predicates() {
        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            0,
        );
        let schema = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]);
        let hf = HeapFile::load(
            disk,
            schema,
            (0..1000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 4)])),
        )
        .unwrap();
        let stats = TableStats::build(&hf, 16).unwrap();
        assert_eq!(stats.n_tuples(), 1000.0);

        let p = Predicate::col_cmp(0, CmpOp::Lt, 250).and(Predicate::col_cmp(1, CmpOp::Eq, 0));
        let s = stats.predicate_selectivity(&p);
        // Independence: 0.25 × 0.25 ≈ 0.0625.
        assert!((s - 0.0625).abs() < 0.02, "sel = {s}");

        let q = Predicate::col_cmp(0, CmpOp::Lt, 100).or(Predicate::col_cmp(0, CmpOp::Ge, 900));
        let s = stats.predicate_selectivity(&q);
        assert!((s - 0.19).abs() < 0.04, "or-sel = {s}"); // PIE: .1+.1−.01

        assert_eq!(stats.predicate_selectivity(&Predicate::True), 1.0);
        assert_eq!(stats.predicate_selectivity(&Predicate::False), 0.0);
    }

    #[test]
    fn stats_catalog_top_operator_estimates() {
        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            1,
        );
        let schema = Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]);
        let load = |disk: &Arc<Disk>, modulo: i64| {
            HeapFile::load(
                disk.clone(),
                schema.clone(),
                (0..1000).map(|i| Tuple::new(vec![Value::Int(i % modulo), Value::Int(i)])),
            )
            .unwrap()
        };
        let mut cat = StatsCatalog::new();
        cat.insert("r", TableStats::build(&load(&disk, 100), 16).unwrap());
        cat.insert("s", TableStats::build(&load(&disk, 200), 16).unwrap());

        // Join on key columns with 100 and 200 distincts → 1/200.
        let join = Expr::relation("r").join(Expr::relation("s"), vec![(0, 0)]);
        let sel = cat.top_operator_selectivity(&join).unwrap();
        assert!((sel - 1.0 / 200.0).abs() < 2e-3, "join sel = {sel}");

        // Select with a quarter-range predicate.
        let select = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 250));
        let sel = cat.top_operator_selectivity(&select).unwrap();
        assert!((sel - 0.25).abs() < 0.03);

        // Projection onto the key column: ~100 groups / 1000 rows.
        let project = Expr::relation("r").project(vec![0]);
        let sel = cat.top_operator_selectivity(&project).unwrap();
        assert!((sel - 0.1).abs() < 0.03, "project sel = {sel}");

        // Missing statistics → None (the prestored approach's gap).
        assert!(cat
            .top_operator_selectivity(&Expr::relation("unknown").project(vec![0]))
            .is_none());
        // Non-base operands → None.
        let nested = Expr::relation("r")
            .select(Predicate::True)
            .join(Expr::relation("s"), vec![(0, 0)]);
        assert!(cat.top_operator_selectivity(&nested).is_none());
    }

    #[test]
    fn flip_preserves_meaning() {
        // const < col ⇔ col > const.
        let h = hist_of((0..100).collect(), 10);
        let mut stats = TableStats {
            columns: vec![Some(h)],
            n_tuples: 100.0,
        };
        let a = stats.predicate_selectivity(&Predicate::Compare {
            left: Operand::Const(Value::Int(30)),
            op: CmpOp::Lt,
            right: Operand::Column(0),
        });
        let b = stats.predicate_selectivity(&Predicate::col_cmp(0, CmpOp::Gt, 30));
        assert!((a - b).abs() < 1e-12);
        stats.n_tuples = 100.0;
    }
}
