//! Exact, set-semantics evaluation — the ground truth the estimators
//! are judged against.
//!
//! Reads blocks *uncharged*, so computing the true `COUNT(E)` (e.g.
//! for experiment reporting) never consumes a query's simulated time
//! quota.

use std::collections::{BTreeSet, HashMap};

use eram_storage::{Tuple, Value};

use crate::catalog::Catalog;
use crate::expr::{Expr, ExprError};

/// Evaluates `expr` exactly, returning the output relation as a
/// sorted, duplicate-free set of tuples.
pub fn eval(expr: &Expr, catalog: &Catalog) -> Result<BTreeSet<Tuple>, ExprError> {
    // Validate once up front so recursive evaluation can't panic.
    expr.output_schema(catalog)?;
    eval_rec(expr, catalog)
}

/// Exact `COUNT(E)` — the paper's query result, computed the slow way.
pub fn exact_count(expr: &Expr, catalog: &Catalog) -> Result<u64, ExprError> {
    Ok(eval(expr, catalog)?.len() as u64)
}

fn eval_rec(expr: &Expr, catalog: &Catalog) -> Result<BTreeSet<Tuple>, ExprError> {
    match expr {
        Expr::Relation(name) => {
            let file = catalog
                .relation(name)
                .ok_or_else(|| ExprError::UnknownRelation(name.clone()))?;
            let tuples = file
                .scan_uncharged()
                .expect("base relation scan cannot fail after validation");
            Ok(tuples.into_iter().collect())
        }
        Expr::Select { input, predicate } => {
            let mut set = eval_rec(input, catalog)?;
            set.retain(|t| predicate.eval(t));
            Ok(set)
        }
        Expr::Project { input, columns } => {
            let set = eval_rec(input, catalog)?;
            Ok(set.iter().map(|t| t.project(columns)).collect())
        }
        Expr::Join { left, right, on } => {
            let ls = eval_rec(left, catalog)?;
            let rs = eval_rec(right, catalog)?;
            // Hash join on the composite key.
            let mut index: HashMap<Vec<&Value>, Vec<&Tuple>> = HashMap::new();
            for r in &rs {
                let key: Vec<&Value> = on.iter().map(|&(_, rc)| r.value(rc)).collect();
                index.entry(key).or_default().push(r);
            }
            let mut out = BTreeSet::new();
            for l in &ls {
                let key: Vec<&Value> = on.iter().map(|&(lc, _)| l.value(lc)).collect();
                if let Some(matches) = index.get(&key) {
                    for r in matches {
                        out.insert(l.concat(r));
                    }
                }
            }
            Ok(out)
        }
        Expr::Union { left, right } => {
            let mut ls = eval_rec(left, catalog)?;
            ls.extend(eval_rec(right, catalog)?);
            Ok(ls)
        }
        Expr::Difference { left, right } => {
            let ls = eval_rec(left, catalog)?;
            let rs = eval_rec(right, catalog)?;
            Ok(ls.difference(&rs).cloned().collect())
        }
        Expr::Intersect { left, right } => {
            let ls = eval_rec(left, catalog)?;
            let rs = eval_rec(right, catalog)?;
            Ok(ls.intersection(&rs).cloned().collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock};
    use std::sync::Arc;

    fn tup(values: &[i64]) -> Tuple {
        Tuple::new(values.iter().map(|&v| Value::Int(v)).collect())
    }

    fn catalog_with(rows: &[(&str, Vec<Vec<i64>>)]) -> Catalog {
        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            0,
        );
        let mut c = Catalog::new();
        for (name, data) in rows {
            let arity = data.first().map_or(1, Vec::len);
            let schema = Schema::new(
                (0..arity)
                    .map(|i| (format!("c{i}"), ColumnType::Int))
                    .collect(),
            );
            let hf = HeapFile::load(disk.clone(), schema, data.iter().map(|r| tup(r))).unwrap();
            c.register(*name, hf);
        }
        c
    }

    #[test]
    fn select_filters() {
        let c = catalog_with(&[("r", vec![vec![1, 1], vec![2, 4], vec![3, 9]])]);
        let e = Expr::relation("r").select(Predicate::col_cmp(0, CmpOp::Ge, 2));
        assert_eq!(exact_count(&e, &c).unwrap(), 2);
    }

    #[test]
    fn project_deduplicates() {
        let c = catalog_with(&[("r", vec![vec![1, 10], vec![2, 10], vec![3, 20]])]);
        let e = Expr::relation("r").project(vec![1]);
        let out = eval(&e, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tup(&[10])));
    }

    #[test]
    fn join_matches_keys() {
        let c = catalog_with(&[
            ("r", vec![vec![1, 100], vec![2, 200]]),
            ("s", vec![vec![1, -1], vec![1, -2], vec![3, -3]]),
        ]);
        let e = Expr::relation("r").join(Expr::relation("s"), vec![(0, 0)]);
        let out = eval(&e, &c).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&tup(&[1, 100, 1, -1])));
        assert!(out.contains(&tup(&[1, 100, 1, -2])));
    }

    #[test]
    fn set_operations() {
        let c = catalog_with(&[
            ("a", vec![vec![1], vec![2], vec![3]]),
            ("b", vec![vec![2], vec![3], vec![4]]),
        ]);
        let a = Expr::relation("a");
        let b = Expr::relation("b");
        assert_eq!(exact_count(&a.clone().union(b.clone()), &c).unwrap(), 4);
        assert_eq!(
            exact_count(&a.clone().difference(b.clone()), &c).unwrap(),
            1
        );
        assert_eq!(exact_count(&a.intersect(b), &c).unwrap(), 2);
    }

    #[test]
    fn multi_key_join() {
        let c = catalog_with(&[
            ("r", vec![vec![1, 2], vec![1, 3]]),
            ("s", vec![vec![1, 2], vec![1, 9]]),
        ]);
        let e = Expr::relation("r").join(Expr::relation("s"), vec![(0, 0), (1, 1)]);
        assert_eq!(exact_count(&e, &c).unwrap(), 1);
    }

    #[test]
    fn nested_expression() {
        let c = catalog_with(&[
            ("a", vec![vec![1], vec![2], vec![3], vec![4]]),
            ("b", vec![vec![3], vec![4], vec![5]]),
        ]);
        // (a − b) ∪ (a ∩ b) = a
        let e = Expr::relation("a")
            .difference(Expr::relation("b"))
            .union(Expr::relation("a").intersect(Expr::relation("b")));
        assert_eq!(exact_count(&e, &c).unwrap(), 4);
    }

    #[test]
    fn eval_validates_first() {
        let c = catalog_with(&[("a", vec![vec![1]])]);
        let e = Expr::relation("a").project(vec![7]);
        assert!(eval(&e, &c).is_err());
    }
}
