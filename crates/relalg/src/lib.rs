//! # eram-relalg
//!
//! The relational-algebra layer of the ERAM engine (Hou, Özsoyoğlu &
//! Taneja, SIGMOD 1989). The paper processes queries of the form
//! `COUNT(E)` where `E` is an arbitrary RA expression over the
//! operators Select, Project, Join, Union, Difference, and Intersect.
//!
//! This crate provides:
//!
//! * [`Expr`] — the RA expression AST, with schema inference and
//!   validation against a [`Catalog`] of stored relations;
//! * [`Predicate`] — selection formulas (comparisons over columns and
//!   constants combined with and/or/not), including the comparison
//!   count that parameterizes the paper's selection cost formula;
//! * [`Catalog`] — named base relations backed by
//!   [`eram_storage::HeapFile`]s;
//! * [`eval`] — an exact, set-semantics evaluator (ground truth for
//!   the estimators; reads blocks *uncharged* so it never consumes a
//!   query's simulated time quota);
//! * [`histogram`] — the *prestored statistics* alternative the
//!   paper contrasts with (equi-depth histograms per column, PsCo 84
//!   / MuDe 88 style), for the comparison ablation;
//! * [`parser`] — the textual query language (ERAM "uses relational
//!   algebra expressions as its query language"); round-trips with
//!   [`Expr`]'s `Display`;
//! * [`pie`] — the **Principle of Inclusion–Exclusion** rewrite
//!   (Section 2 of the paper): `COUNT(E)` over an expression with
//!   union/difference becomes a signed sum `Σᵢ cᵢ·COUNT(Eᵢ')` where
//!   every `Eᵢ'` uses only Select/Join/Intersect/Project.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod catalog;
pub mod eval;
pub mod expr;
pub mod histogram;
pub mod optimize;
pub mod parser;
pub mod pie;
pub mod predicate;

pub use catalog::Catalog;
pub use expr::{Expr, ExprError, OpKind};
pub use histogram::{EquiDepthHistogram, StatsCatalog, TableStats};
pub use optimize::push_selections;
pub use parser::{parse_expr, parse_predicate, ParseError};
pub use pie::{CountTerm, PieRewrite};
pub use predicate::{CmpOp, Operand, Predicate};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, ExprError>;
