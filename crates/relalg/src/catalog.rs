//! The catalog of stored relations.

use std::collections::BTreeMap;

use eram_storage::{HeapFile, Schema};

/// Named base relations.
///
/// A relation may be *stored* (backed by a [`HeapFile`]) or
/// *declared* (schema only — enough for expression validation and
/// planning in tests).
#[derive(Default)]
pub struct Catalog {
    stored: BTreeMap<String, HeapFile>,
    declared: BTreeMap<String, Schema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a stored relation. Replaces any previous entry with
    /// the same name.
    pub fn register(&mut self, name: impl Into<String>, file: HeapFile) {
        let name = name.into();
        self.declared.remove(&name);
        self.stored.insert(name, file);
    }

    /// Registers a schema-only relation (validation without data).
    pub fn register_schema(&mut self, name: impl Into<String>, schema: Schema) {
        let name = name.into();
        self.stored.remove(&name);
        self.declared.insert(name, schema);
    }

    /// The heap file of a stored relation.
    pub fn relation(&self, name: &str) -> Option<&HeapFile> {
        self.stored.get(name)
    }

    /// The schema of a relation (stored or declared).
    pub fn schema_of(&self, name: &str) -> Option<&Schema> {
        self.stored
            .get(name)
            .map(|f| f.schema())
            .or_else(|| self.declared.get(name))
    }

    /// Names of all relations, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .stored
            .keys()
            .chain(self.declared.keys())
            .map(String::as_str)
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.stored.len() + self.declared.len()
    }

    /// True if no relation is registered.
    pub fn is_empty(&self) -> bool {
        self.stored.is_empty() && self.declared.is_empty()
    }
}

impl std::fmt::Debug for Catalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Catalog")
            .field("stored", &self.stored.keys().collect::<Vec<_>>())
            .field("declared", &self.declared.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_storage::{ColumnType, DeviceProfile, Disk, SimClock, Tuple, Value};
    use std::sync::Arc;

    #[test]
    fn declared_and_stored_relations() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![("a", ColumnType::Int)]);
        c.register_schema("decl", schema.clone());
        assert!(c.schema_of("decl").is_some());
        assert!(c.relation("decl").is_none());

        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            0,
        );
        let hf = HeapFile::load(
            disk,
            schema,
            (0..3).map(|i| Tuple::new(vec![Value::Int(i)])),
        )
        .unwrap();
        c.register("base", hf);
        assert!(c.relation("base").is_some());
        assert_eq!(c.schema_of("base").unwrap().arity(), 1);
        assert_eq!(c.names(), vec!["base", "decl"]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn register_replaces_declared() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![("a", ColumnType::Int)]);
        c.register_schema("r", schema.clone());
        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            0,
        );
        let hf = HeapFile::load(disk, schema, std::iter::empty()).unwrap();
        c.register("r", hf);
        assert_eq!(c.len(), 1);
        assert!(c.relation("r").is_some());
    }

    #[test]
    fn missing_names_return_none() {
        let c = Catalog::new();
        assert!(c.schema_of("x").is_none());
        assert!(c.relation("x").is_none());
        assert!(c.is_empty());
    }
}
