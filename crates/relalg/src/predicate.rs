//! Selection formulas.
//!
//! The paper's selection operator evaluates "the qualification F" per
//! tuple; its cost formula charges `c₁` per tuple for "reading a tuple
//! from the disk and checking a tuple for the satisfaction of the
//! selection formula", with the coefficient depending on, among other
//! things, the number of "comparisons in selection formulas". The
//! experiments use formulas with one or two integer comparisons.
//! [`Predicate::num_comparisons`] exposes exactly that parameter.

use serde::{Deserialize, Serialize};

use eram_storage::{ColumnData, ColumnarBlock, Schema, Tuple, Value};

use crate::expr::ExprError;

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A column of the input tuple, by index.
    Column(usize),
    /// A constant.
    Const(Value),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A selection formula.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (selects every tuple).
    True,
    /// Always false (selects no tuple; used to produce the paper's
    /// "zero output tuples" selection workload).
    False,
    /// `left op right`.
    Compare {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column op constant` — the paper's typical atom.
    pub fn col_cmp(column: usize, op: CmpOp, constant: impl Into<Value>) -> Self {
        Predicate::Compare {
            left: Operand::Column(column),
            op,
            right: Operand::Const(constant.into()),
        }
    }

    /// `column op column`.
    pub fn col_col(left: usize, op: CmpOp, right: usize) -> Self {
        Predicate::Compare {
            left: Operand::Column(left),
            op,
            right: Operand::Column(right),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Number of comparison atoms — the cost-formula parameter the
    /// paper calls "comparisons in selection formulas".
    pub fn num_comparisons(&self) -> u64 {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Compare { .. } => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.num_comparisons() + b.num_comparisons(),
            Predicate::Not(a) => a.num_comparisons(),
        }
    }

    /// Checks that every column reference is valid for `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), ExprError> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Compare { left, right, .. } => {
                for operand in [left, right] {
                    if let Operand::Column(i) = operand {
                        if *i >= schema.arity() {
                            return Err(ExprError::ColumnOutOfRange {
                                column: *i,
                                arity: schema.arity(),
                            });
                        }
                    }
                }
                Ok(())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(a) => a.validate(schema),
        }
    }

    /// Evaluates the formula against a tuple.
    ///
    /// # Panics
    /// Panics if a column index is out of range (call
    /// [`Predicate::validate`] first).
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Compare { left, op, right } => {
                let l = match left {
                    Operand::Column(i) => t.value(*i),
                    Operand::Const(v) => v,
                };
                let r = match right {
                    Operand::Column(i) => t.value(*i),
                    Operand::Const(v) => v,
                };
                op.apply(l.cmp(r))
            }
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
            Predicate::Not(a) => !a.eval(t),
        }
    }

    /// Evaluates the formula against every record of a columnar
    /// block at once, producing a selection bitmap with one entry per
    /// record.
    ///
    /// This is the columnar counterpart of [`Predicate::eval`] and
    /// must agree with it record for record — the engine's layout
    /// equivalence suites compare the two directly. Comparison atoms
    /// over same-typed operands run as tight loops over the typed
    /// column arrays (floats via `total_cmp`, exactly like
    /// [`Value::cmp`]); mixed-type atoms fall back to materializing
    /// [`Value`]s per record so cross-type ordering stays identical
    /// to the row path.
    ///
    /// # Panics
    /// Panics if a column index is out of range (call
    /// [`Predicate::validate`] first).
    pub fn eval_mask(&self, block: &ColumnarBlock) -> Vec<bool> {
        match self {
            Predicate::True => vec![true; block.len()],
            Predicate::False => vec![false; block.len()],
            Predicate::Compare { left, op, right } => compare_mask(left, *op, right, block),
            Predicate::And(a, b) => {
                let mut m = a.eval_mask(block);
                for (x, y) in m.iter_mut().zip(b.eval_mask(block)) {
                    *x = *x && y;
                }
                m
            }
            Predicate::Or(a, b) => {
                let mut m = a.eval_mask(block);
                for (x, y) in m.iter_mut().zip(b.eval_mask(block)) {
                    *x = *x || y;
                }
                m
            }
            Predicate::Not(a) => {
                let mut m = a.eval_mask(block);
                for x in &mut m {
                    *x = !*x;
                }
                m
            }
        }
    }
}

/// One comparison atom over a whole block. Same-typed operand pairs
/// take the typed fast path; everything else defers to [`Value`]'s
/// total order per record.
fn compare_mask(left: &Operand, op: CmpOp, right: &Operand, block: &ColumnarBlock) -> Vec<bool> {
    match (left, right) {
        (Operand::Const(l), Operand::Const(r)) => vec![op.apply(l.cmp(r)); block.len()],
        (Operand::Column(i), Operand::Const(v)) => match (block.column(*i), v) {
            (ColumnData::Int(col), Value::Int(k)) => {
                col.iter().map(|x| op.apply(x.cmp(k))).collect()
            }
            (ColumnData::Float(col), Value::Float(k)) => {
                col.iter().map(|x| op.apply(x.total_cmp(k))).collect()
            }
            (ColumnData::Bool(col), Value::Bool(k)) => {
                col.iter().map(|x| op.apply(x.cmp(k))).collect()
            }
            (ColumnData::Str(col), Value::Str(k)) => col
                .iter()
                .map(|x| op.apply(x.as_str().cmp(k.as_str())))
                .collect(),
            (col, v) => (0..block.len())
                .map(|r| op.apply(col.value(r).cmp(v)))
                .collect(),
        },
        (Operand::Const(v), Operand::Column(i)) => match (v, block.column(*i)) {
            (Value::Int(k), ColumnData::Int(col)) => {
                col.iter().map(|x| op.apply(k.cmp(x))).collect()
            }
            (Value::Float(k), ColumnData::Float(col)) => {
                col.iter().map(|x| op.apply(k.total_cmp(x))).collect()
            }
            (Value::Bool(k), ColumnData::Bool(col)) => {
                col.iter().map(|x| op.apply(k.cmp(x))).collect()
            }
            (Value::Str(k), ColumnData::Str(col)) => col
                .iter()
                .map(|x| op.apply(k.as_str().cmp(x.as_str())))
                .collect(),
            (v, col) => (0..block.len())
                .map(|r| op.apply(v.cmp(&col.value(r))))
                .collect(),
        },
        (Operand::Column(i), Operand::Column(j)) => match (block.column(*i), block.column(*j)) {
            (ColumnData::Int(a), ColumnData::Int(b)) => {
                a.iter().zip(b).map(|(x, y)| op.apply(x.cmp(y))).collect()
            }
            (ColumnData::Float(a), ColumnData::Float(b)) => a
                .iter()
                .zip(b)
                .map(|(x, y)| op.apply(x.total_cmp(y)))
                .collect(),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => {
                a.iter().zip(b).map(|(x, y)| op.apply(x.cmp(y))).collect()
            }
            (ColumnData::Str(a), ColumnData::Str(b)) => {
                a.iter().zip(b).map(|(x, y)| op.apply(x.cmp(y))).collect()
            }
            (a, b) => (0..block.len())
                .map(|r| op.apply(a.value(r).cmp(&b.value(r))))
                .collect(),
        },
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Compare { left, op, right } => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                let fmt_operand = |f: &mut std::fmt::Formatter<'_>, o: &Operand| match o {
                    Operand::Column(i) => write!(f, "#{i}"),
                    Operand::Const(v) => write!(f, "{v}"),
                };
                fmt_operand(f, left)?;
                write!(f, " {sym} ")?;
                fmt_operand(f, right)
            }
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "not ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_storage::ColumnType;

    fn t(values: Vec<i64>) -> Tuple {
        Tuple::new(values.into_iter().map(Value::Int).collect())
    }

    #[test]
    fn comparisons_evaluate_correctly() {
        let row = t(vec![5, 10]);
        assert!(Predicate::col_cmp(0, CmpOp::Eq, 5).eval(&row));
        assert!(Predicate::col_cmp(0, CmpOp::Lt, 6).eval(&row));
        assert!(Predicate::col_cmp(1, CmpOp::Ge, 10).eval(&row));
        assert!(!Predicate::col_cmp(1, CmpOp::Ne, 10).eval(&row));
        assert!(Predicate::col_col(0, CmpOp::Lt, 1).eval(&row));
    }

    #[test]
    fn boolean_connectives() {
        let row = t(vec![5]);
        let p = Predicate::col_cmp(0, CmpOp::Gt, 0).and(Predicate::col_cmp(0, CmpOp::Lt, 10));
        assert!(p.eval(&row));
        let q = Predicate::col_cmp(0, CmpOp::Gt, 7).or(Predicate::col_cmp(0, CmpOp::Lt, 7));
        assert!(q.eval(&row));
        assert!(!q.clone().not().eval(&row));
        assert!(Predicate::True.eval(&row));
        assert!(!Predicate::False.eval(&row));
    }

    #[test]
    fn comparison_count_matches_structure() {
        let p = Predicate::col_cmp(0, CmpOp::Gt, 1)
            .and(Predicate::col_cmp(0, CmpOp::Lt, 9).or(Predicate::True))
            .not();
        assert_eq!(p.num_comparisons(), 2);
        assert_eq!(Predicate::False.num_comparisons(), 0);
    }

    #[test]
    fn validate_catches_bad_columns() {
        let schema = Schema::new(vec![("a", ColumnType::Int)]);
        assert!(Predicate::col_cmp(0, CmpOp::Eq, 1)
            .validate(&schema)
            .is_ok());
        assert!(Predicate::col_cmp(1, CmpOp::Eq, 1)
            .validate(&schema)
            .is_err());
        assert!(Predicate::col_col(0, CmpOp::Lt, 3)
            .validate(&schema)
            .is_err());
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::col_cmp(0, CmpOp::Le, 3).and(Predicate::col_col(1, CmpOp::Eq, 2));
        assert_eq!(p.to_string(), "(#0 <= 3 and #1 = #2)");
    }

    fn mixed_rows() -> (Schema, Vec<Tuple>) {
        let schema = Schema::new(vec![
            ("i", ColumnType::Int),
            ("f", ColumnType::Float),
            ("b", ColumnType::Bool),
            ("s", ColumnType::Str { width: 8 }),
            ("j", ColumnType::Int),
        ]);
        let rows = (0..17)
            .map(|k| {
                Tuple::new(vec![
                    Value::Int(k % 5 - 2),
                    Value::Float(if k == 7 {
                        f64::NAN
                    } else {
                        k as f64 * 0.5 - 3.0
                    }),
                    Value::Bool(k % 3 == 0),
                    Value::Str(format!("s{}", k % 4)),
                    Value::Int(k % 2),
                ])
            })
            .collect();
        (schema, rows)
    }

    fn assert_mask_matches_eval(p: &Predicate, schema: &Schema, rows: &[Tuple]) {
        let block = eram_storage::ColumnarBlock::from_tuples(schema, rows).unwrap();
        let mask = p.eval_mask(&block);
        let expect: Vec<bool> = rows.iter().map(|t| p.eval(t)).collect();
        assert_eq!(mask, expect, "eval_mask diverged from eval for {p}");
    }

    #[test]
    fn eval_mask_agrees_with_eval_on_every_atom_shape() {
        let (schema, rows) = mixed_rows();
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        for op in ops {
            // Typed fast paths, one per column type.
            assert_mask_matches_eval(&Predicate::col_cmp(0, op, 0i64), &schema, &rows);
            assert_mask_matches_eval(&Predicate::col_cmp(1, op, 0.5f64), &schema, &rows);
            assert_mask_matches_eval(&Predicate::col_cmp(2, op, true), &schema, &rows);
            assert_mask_matches_eval(&Predicate::col_cmp(3, op, "s2"), &schema, &rows);
            // NaN handling must follow total_cmp like the row path.
            assert_mask_matches_eval(&Predicate::col_cmp(1, op, f64::NAN), &schema, &rows);
            // Column-to-column, same type and mixed type.
            assert_mask_matches_eval(&Predicate::col_col(0, op, 4), &schema, &rows);
            assert_mask_matches_eval(&Predicate::col_col(0, op, 1), &schema, &rows);
            // Mixed-type constant (cross-type total order) and the
            // reversed const-vs-column orientation.
            assert_mask_matches_eval(&Predicate::col_cmp(0, op, 1.0f64), &schema, &rows);
            assert_mask_matches_eval(
                &Predicate::Compare {
                    left: Operand::Const(Value::Int(1)),
                    op,
                    right: Operand::Column(0),
                },
                &schema,
                &rows,
            );
            // Const-vs-const broadcast.
            assert_mask_matches_eval(
                &Predicate::Compare {
                    left: Operand::Const(Value::Int(1)),
                    op,
                    right: Operand::Const(Value::Int(2)),
                },
                &schema,
                &rows,
            );
        }
    }

    #[test]
    fn eval_mask_agrees_with_eval_on_connectives() {
        let (schema, rows) = mixed_rows();
        let p = Predicate::col_cmp(0, CmpOp::Gt, -1i64)
            .and(
                Predicate::col_cmp(1, CmpOp::Lt, 2.0f64).or(Predicate::col_cmp(2, CmpOp::Eq, true)),
            )
            .and(Predicate::col_cmp(3, CmpOp::Ne, "s1").not());
        assert_mask_matches_eval(&p, &schema, &rows);
        assert_mask_matches_eval(&Predicate::True, &schema, &rows);
        assert_mask_matches_eval(&Predicate::False, &schema, &rows);
    }

    #[test]
    fn eval_mask_on_empty_block_is_empty() {
        let (schema, _) = mixed_rows();
        let block = eram_storage::ColumnarBlock::from_tuples(&schema, &[]).unwrap();
        assert!(Predicate::col_cmp(0, CmpOp::Eq, 0i64)
            .eval_mask(&block)
            .is_empty());
        assert!(Predicate::True.eval_mask(&block).is_empty());
    }
}
