//! Selection formulas.
//!
//! The paper's selection operator evaluates "the qualification F" per
//! tuple; its cost formula charges `c₁` per tuple for "reading a tuple
//! from the disk and checking a tuple for the satisfaction of the
//! selection formula", with the coefficient depending on, among other
//! things, the number of "comparisons in selection formulas". The
//! experiments use formulas with one or two integer comparisons.
//! [`Predicate::num_comparisons`] exposes exactly that parameter.

use serde::{Deserialize, Serialize};

use eram_storage::{Schema, Tuple, Value};

use crate::expr::ExprError;

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A column of the input tuple, by index.
    Column(usize),
    /// A constant.
    Const(Value),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn apply(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A selection formula.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true (selects every tuple).
    True,
    /// Always false (selects no tuple; used to produce the paper's
    /// "zero output tuples" selection workload).
    False,
    /// `left op right`.
    Compare {
        /// Left operand.
        left: Operand,
        /// Comparison operator.
        op: CmpOp,
        /// Right operand.
        right: Operand,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column op constant` — the paper's typical atom.
    pub fn col_cmp(column: usize, op: CmpOp, constant: impl Into<Value>) -> Self {
        Predicate::Compare {
            left: Operand::Column(column),
            op,
            right: Operand::Const(constant.into()),
        }
    }

    /// `column op column`.
    pub fn col_col(left: usize, op: CmpOp, right: usize) -> Self {
        Predicate::Compare {
            left: Operand::Column(left),
            op,
            right: Operand::Column(right),
        }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Number of comparison atoms — the cost-formula parameter the
    /// paper calls "comparisons in selection formulas".
    pub fn num_comparisons(&self) -> u64 {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Compare { .. } => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.num_comparisons() + b.num_comparisons(),
            Predicate::Not(a) => a.num_comparisons(),
        }
    }

    /// Checks that every column reference is valid for `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<(), ExprError> {
        match self {
            Predicate::True | Predicate::False => Ok(()),
            Predicate::Compare { left, right, .. } => {
                for operand in [left, right] {
                    if let Operand::Column(i) = operand {
                        if *i >= schema.arity() {
                            return Err(ExprError::ColumnOutOfRange {
                                column: *i,
                                arity: schema.arity(),
                            });
                        }
                    }
                }
                Ok(())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(a) => a.validate(schema),
        }
    }

    /// Evaluates the formula against a tuple.
    ///
    /// # Panics
    /// Panics if a column index is out of range (call
    /// [`Predicate::validate`] first).
    pub fn eval(&self, t: &Tuple) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Compare { left, op, right } => {
                let l = match left {
                    Operand::Column(i) => t.value(*i),
                    Operand::Const(v) => v,
                };
                let r = match right {
                    Operand::Column(i) => t.value(*i),
                    Operand::Const(v) => v,
                };
                op.apply(l.cmp(r))
            }
            Predicate::And(a, b) => a.eval(t) && b.eval(t),
            Predicate::Or(a, b) => a.eval(t) || b.eval(t),
            Predicate::Not(a) => !a.eval(t),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Compare { left, op, right } => {
                let sym = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "<=",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => ">=",
                };
                let fmt_operand = |f: &mut std::fmt::Formatter<'_>, o: &Operand| match o {
                    Operand::Column(i) => write!(f, "#{i}"),
                    Operand::Const(v) => write!(f, "{v}"),
                };
                fmt_operand(f, left)?;
                write!(f, " {sym} ")?;
                fmt_operand(f, right)
            }
            Predicate::And(a, b) => write!(f, "({a} and {b})"),
            Predicate::Or(a, b) => write!(f, "({a} or {b})"),
            Predicate::Not(a) => write!(f, "not ({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_storage::ColumnType;

    fn t(values: Vec<i64>) -> Tuple {
        Tuple::new(values.into_iter().map(Value::Int).collect())
    }

    #[test]
    fn comparisons_evaluate_correctly() {
        let row = t(vec![5, 10]);
        assert!(Predicate::col_cmp(0, CmpOp::Eq, 5).eval(&row));
        assert!(Predicate::col_cmp(0, CmpOp::Lt, 6).eval(&row));
        assert!(Predicate::col_cmp(1, CmpOp::Ge, 10).eval(&row));
        assert!(!Predicate::col_cmp(1, CmpOp::Ne, 10).eval(&row));
        assert!(Predicate::col_col(0, CmpOp::Lt, 1).eval(&row));
    }

    #[test]
    fn boolean_connectives() {
        let row = t(vec![5]);
        let p = Predicate::col_cmp(0, CmpOp::Gt, 0).and(Predicate::col_cmp(0, CmpOp::Lt, 10));
        assert!(p.eval(&row));
        let q = Predicate::col_cmp(0, CmpOp::Gt, 7).or(Predicate::col_cmp(0, CmpOp::Lt, 7));
        assert!(q.eval(&row));
        assert!(!q.clone().not().eval(&row));
        assert!(Predicate::True.eval(&row));
        assert!(!Predicate::False.eval(&row));
    }

    #[test]
    fn comparison_count_matches_structure() {
        let p = Predicate::col_cmp(0, CmpOp::Gt, 1)
            .and(Predicate::col_cmp(0, CmpOp::Lt, 9).or(Predicate::True))
            .not();
        assert_eq!(p.num_comparisons(), 2);
        assert_eq!(Predicate::False.num_comparisons(), 0);
    }

    #[test]
    fn validate_catches_bad_columns() {
        let schema = Schema::new(vec![("a", ColumnType::Int)]);
        assert!(Predicate::col_cmp(0, CmpOp::Eq, 1)
            .validate(&schema)
            .is_ok());
        assert!(Predicate::col_cmp(1, CmpOp::Eq, 1)
            .validate(&schema)
            .is_err());
        assert!(Predicate::col_col(0, CmpOp::Lt, 3)
            .validate(&schema)
            .is_err());
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::col_cmp(0, CmpOp::Le, 3).and(Predicate::col_col(1, CmpOp::Eq, 2));
        assert_eq!(p.to_string(), "(#0 <= 3 and #1 = #2)");
    }
}
