//! The block store.
//!
//! [`Disk`] is the single point through which all block I/O and all
//! modeled CPU work flows. Every charged operation samples a duration
//! from the [`DeviceProfile`] (with jitter) and advances the attached
//! [`Clock`], so against a [`crate::SimClock`] the disk *is* the
//! simulated device, and against a [`crate::WallClock`] the charges
//! are free and real time rules.
//!
//! Blocks live in memory (a reproduction of the paper's experiments
//! touches at most a few thousand 1 KB blocks per relation); the
//! charged-access discipline — not the backing medium — is what the
//! algorithms observe. `*_uncharged` accessors exist for ground-truth
//! computation (exact `COUNT` evaluation must not consume the query's
//! simulated quota).
//!
//! # Lane views
//!
//! A disk is split into *shared* state (the backend bytes, checksum
//! digests, and file versions — one copy per physical device) and
//! *per-view* state (the jitter RNG, the fault injector's attempt
//! counters, and the activity counters). [`Disk::lane_view`] derives
//! a second handle onto the same backend whose charges go to a
//! different clock and whose RNG/fault streams are private: the query
//! server gives each admitted job such a lane so interleaved
//! execution charges every job exactly as if it ran alone. Files
//! created through a lane get lane-local *virtual* ids (translated at
//! the backend boundary), so a job's temporary run files carry the
//! same ids — and therefore the same fault-injection decisions, which
//! hash the id — no matter how many other jobs allocate concurrently.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::backend::{BlockBackend, FileBackend, MemoryBackend};
use crate::block::{Block, BLOCK_SIZE};
use crate::broker::SharedDrawBroker;
use crate::cache::BlockCache;
use crate::clock::Clock;
use crate::cost::{DeviceOp, DeviceProfile};
use crate::error::{IoFault, StorageError};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultStats};
use crate::Result;

/// Identifies a file on a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Counters of physical activity on a disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Charged block reads.
    pub block_reads: u64,
    /// Charged block writes.
    pub block_writes: u64,
    /// Charged tuple-CPU units.
    pub tuple_cpu: u64,
    /// Charged comparison units.
    pub compares: u64,
    /// Checksum verifications performed on charged reads.
    #[serde(default)]
    pub checksum_verifies: u64,
}

/// Device state shared by every view of one physical disk: the
/// backend bytes plus the integrity/version bookkeeping that must
/// agree across views.
struct DiskShared {
    backend: Box<dyn BlockBackend>,
    /// FNV-1a digest of every block written through this disk, keyed
    /// by (physical file, index); verified on every charged read.
    checksums: HashMap<(u64, u64), u64>,
    /// Global mutation counter feeding `file_versions` — strictly
    /// monotone across all files, so a freed-and-recreated file can
    /// never repeat an old version.
    write_stamp: u64,
    /// Per-file version: the value of `write_stamp` at the file's
    /// last mutation (append/overwrite). Caches that snapshot decoded
    /// file contents (the executor's `RunCache`) key their entries by
    /// this version so a later in-place write or free invalidates
    /// them instead of serving pre-mutation tuples by file id.
    file_versions: HashMap<u64, u64>,
}

impl DiskShared {
    fn bump_version(&mut self, file: u64) {
        self.write_stamp += 1;
        self.file_versions.insert(file, self.write_stamp);
    }
}

/// Per-view state: the jitter RNG and the fault injector's attempt
/// counters. Each lane view gets its own, so one job's charge stream
/// and fault pattern never depend on what other jobs are doing.
struct DiskLocal {
    rng: StdRng,
    /// Active fault injector, if a [`FaultPlan`] has been armed.
    faults: Option<FaultInjector>,
}

/// High bit + lane tag marking virtual file ids handed out by lane
/// views; backend ids are small integers, so the namespaces can never
/// collide.
const LANE_FILE_TAG: u64 = 0x8000_0000_0000_0000;

/// Lane-local virtual file-id namespace: files created through a lane
/// view get deterministic ids derived from the lane index alone, so
/// fault decisions (which hash the file id) and error messages are
/// invariant to how lanes interleave their allocations.
struct LaneFiles {
    tag: u64,
    next: u64,
    /// virtual id → physical backend id
    map: HashMap<u64, u64>,
}

/// A block store that charges a clock for every operation.
pub struct Disk {
    shared: Arc<Mutex<DiskShared>>,
    local: Mutex<DiskLocal>,
    /// Buffer cache, outside the shared lock: it carries its own lock
    /// striping, so concurrent readers hitting the cache never
    /// serialize on the backend lock.
    cache: Option<BlockCache>,
    /// Lane-local virtual file-id table; `None` on a root disk, whose
    /// ids are the backend's own.
    lane: Option<Mutex<LaneFiles>>,
    /// Cross-lane draw pool, armed only on lane views serving a
    /// concurrent batch.
    broker: Option<Arc<SharedDrawBroker>>,
    clock: Arc<dyn Clock>,
    profile: DeviceProfile,
    block_size: usize,
    reads: AtomicU64,
    writes: AtomicU64,
    tuple_cpu: AtomicU64,
    compares: AtomicU64,
    verifies: AtomicU64,
    /// Charged reads served from the shared-draw pool (a physical
    /// fetch avoided; the subscriber was still charged in full).
    shared_hits: AtomicU64,
    /// Total device time (ns) those pool hits would have cost the
    /// physical device.
    saved_ns: AtomicU64,
}

impl Disk {
    /// Creates an in-memory disk with the paper's default 1 KB blocks.
    pub fn new(clock: Arc<dyn Clock>, profile: DeviceProfile, seed: u64) -> Arc<Self> {
        Self::with_block_size(clock, profile, BLOCK_SIZE, seed)
    }

    /// Creates an in-memory disk with a custom block size.
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn with_block_size(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        block_size: usize,
        seed: u64,
    ) -> Arc<Self> {
        assert!(block_size > 0, "block size must be positive");
        Self::with_backend(
            clock,
            profile,
            block_size,
            seed,
            Box::new(MemoryBackend::new()),
            None,
        )
    }

    /// Creates a disk whose blocks live in real files under `dir`
    /// (one file per relation/temporary) — for data sets larger than
    /// RAM. The directory must already exist.
    pub fn file_backed(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        seed: u64,
        dir: &std::path::Path,
    ) -> Result<Arc<Self>> {
        let backend = FileBackend::new(dir, BLOCK_SIZE)?;
        Ok(Self::with_backend(
            clock,
            profile,
            BLOCK_SIZE,
            seed,
            Box::new(backend),
            None,
        ))
    }

    fn with_backend(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        block_size: usize,
        seed: u64,
        backend: Box<dyn BlockBackend>,
        cache: Option<BlockCache>,
    ) -> Arc<Self> {
        Arc::new(Disk {
            shared: Arc::new(Mutex::new(DiskShared {
                backend,
                checksums: HashMap::new(),
                write_stamp: 0,
                file_versions: HashMap::new(),
            })),
            local: Mutex::new(DiskLocal {
                rng: StdRng::seed_from_u64(seed),
                faults: None,
            }),
            cache,
            lane: None,
            broker: None,
            clock,
            profile,
            block_size,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            tuple_cpu: AtomicU64::new(0),
            compares: AtomicU64::new(0),
            verifies: AtomicU64::new(0),
            shared_hits: AtomicU64::new(0),
            saved_ns: AtomicU64::new(0),
        })
    }

    /// Derives a per-job lane view of this disk: same backend bytes,
    /// checksums, and file versions, but charges go to `clock`, the
    /// jitter RNG restarts from `seed`, and the fault injector (a
    /// fresh instance of this disk's armed plan, with its own attempt
    /// counters) decides faults from the lane's own read history.
    /// Files created through the view get lane-deterministic virtual
    /// ids. `broker`, when set, pools base-relation reads with other
    /// lanes of the same batch — charge-transparent to this lane.
    ///
    /// Lane views carry no buffer cache: each job's charge stream
    /// must be independent of co-resident jobs, and a shared cache
    /// would leak their access history into this job's costs.
    pub fn lane_view(
        self: &Arc<Self>,
        clock: Arc<dyn Clock>,
        seed: u64,
        lane: u64,
        broker: Option<Arc<SharedDrawBroker>>,
    ) -> Arc<Disk> {
        let plan = self.fault_plan();
        Arc::new(Disk {
            shared: Arc::clone(&self.shared),
            local: Mutex::new(DiskLocal {
                rng: StdRng::seed_from_u64(seed),
                faults: plan.map(FaultInjector::new),
            }),
            cache: None,
            lane: Some(Mutex::new(LaneFiles {
                tag: LANE_FILE_TAG | ((lane + 1) << 32),
                next: 0,
                map: HashMap::new(),
            })),
            broker,
            clock,
            profile: self.profile.clone(),
            block_size: self.block_size,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            tuple_cpu: AtomicU64::new(0),
            compares: AtomicU64::new(0),
            verifies: AtomicU64::new(0),
            shared_hits: AtomicU64::new(0),
            saved_ns: AtomicU64::new(0),
        })
    }

    /// Maps a (possibly lane-virtual) file id to the backend's id.
    fn physical(&self, file: FileId) -> u64 {
        match &self.lane {
            Some(lane) => lane.lock().map.get(&file.0).copied().unwrap_or(file.0),
            None => file.0,
        }
    }

    /// Creates an in-memory disk fronted by an LRU buffer cache of
    /// `cache_blocks` blocks. Charged reads that hit the cache cost
    /// [`DeviceProfile::cache_hit`] instead of a full block read.
    /// The paper's prototype has no cache; this is the middle ground
    /// between its disk-resident and main-memory designs.
    pub fn new_cached(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        seed: u64,
        cache_blocks: usize,
    ) -> Arc<Self> {
        Self::with_backend(
            clock,
            profile,
            BLOCK_SIZE,
            seed,
            Box::new(MemoryBackend::new()),
            Some(BlockCache::new(cache_blocks)),
        )
    }

    /// Cache hit/miss counters, if a cache is attached.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| (c.hits(), c.misses()))
    }

    /// Arms fault injection: every subsequent charged read runs
    /// through the plan's deterministic fault decisions. Replaces any
    /// previously armed plan (and its counters).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.local.lock().faults = Some(FaultInjector::new(plan));
    }

    /// Disarms fault injection.
    pub fn clear_fault_plan(&self) {
        self.local.lock().faults = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.local.lock().faults.as_ref().map(|i| *i.plan())
    }

    /// Counters of faults injected so far, if a plan is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.local.lock().faults.as_ref().map(|i| i.stats())
    }

    /// The clock charged by this disk.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The device cost model in effect.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Block capacity in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Allocates a new, empty file. Through a lane view the returned
    /// id is lane-virtual — deterministic for the lane regardless of
    /// concurrent allocations on other views.
    pub fn create_file(&self) -> FileId {
        let physical = self.shared.lock().backend.create_file();
        match &self.lane {
            Some(lane) => {
                let mut lane = lane.lock();
                let virt = lane.tag | lane.next;
                lane.next += 1;
                lane.map.insert(virt, physical);
                FileId(virt)
            }
            None => FileId(physical),
        }
    }

    /// Releases a file's blocks (temporary results between stages).
    pub fn free_file(&self, file: FileId) {
        let physical = self.physical(file);
        let mut shared = self.shared.lock();
        shared.backend.free_file(physical);
        shared.checksums.retain(|&(f, _), _| f != physical);
        // A freed file's content is gone: advance its version so any
        // decoded-run cache entry keyed to the old version can never
        // serve again, even if a backend ever reused the id.
        shared.bump_version(physical);
        drop(shared);
        if let Some(cache) = &self.cache {
            cache.invalidate_file(file.0);
        }
    }

    /// The file's current content version: 0 for a file never written
    /// through this disk, otherwise a strictly monotone stamp bumped
    /// on every append, overwrite, or free. Two reads of the same
    /// file at the same version are guaranteed to see the same bytes
    /// (absent injected faults), which is the invariant decoded-run
    /// caches rely on.
    pub fn file_version(&self, file: FileId) -> u64 {
        let physical = self.physical(file);
        self.shared
            .lock()
            .file_versions
            .get(&physical)
            .copied()
            .unwrap_or(0)
    }

    /// Number of blocks currently allocated to `file`.
    pub fn num_blocks(&self, file: FileId) -> Result<u64> {
        let physical = self.physical(file);
        self.shared
            .lock()
            .backend
            .num_blocks(physical)
            .ok_or(StorageError::UnknownFile(file.0))
    }

    /// Appends a block to `file`, charging one block write.
    ///
    /// # Panics
    /// Panics if the block's size differs from the disk's block size.
    pub fn append_block(&self, file: FileId, block: Block) -> Result<u64> {
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        self.charge(DeviceOp::BlockWrite);
        self.writes.fetch_add(1, Ordering::Relaxed);
        let physical = self.physical(file);
        let index = {
            let mut shared = self.shared.lock();
            let index = shared.backend.append(physical, &block)?;
            shared.checksums.insert((physical, index), block.checksum());
            shared.bump_version(physical);
            index
        };
        if let Some(cache) = &self.cache {
            cache.put(file.0, index, Arc::new(block));
        }
        Ok(index)
    }

    /// Reads block `index` of `file`, charging one block read (or a
    /// cache hit when the block is resident in the buffer cache).
    ///
    /// Charged reads are the fault-injection and integrity-check
    /// surface: an armed [`FaultPlan`] may fail the read transiently,
    /// add a latency spike, or corrupt the returned bytes, and every
    /// block read from the backend is verified against the checksum
    /// recorded when it was written. Cache hits skip both — a cached
    /// block was verified when it entered the cache, matching a real
    /// buffer pool where rot lives on the medium, not in RAM.
    ///
    /// When a [`SharedDrawBroker`] is armed (lane views only), a read
    /// of an eligible base-relation block that another lane already
    /// fetched is served from the pool: the charge, fault decision,
    /// and checksum verification are identical — only the physical
    /// backend fetch is skipped.
    ///
    /// Returns a shared [`Arc<Block>`]: cache hits hand back the
    /// resident block without copying its bytes.
    pub fn read_block(&self, file: FileId, index: u64) -> Result<Arc<Block>> {
        // Cache lookup first — the cache carries its own striped
        // locks, so hits never touch the backend lock.
        let cached = self
            .cache
            .as_ref()
            .and_then(|cache| cache.get(file.0, index));
        if let Some(block) = cached {
            self.charge(DeviceOp::CacheHit);
            return Ok(block);
        }
        let cost = self.sample_charge(DeviceOp::BlockRead);
        self.reads.fetch_add(1, Ordering::Relaxed);
        let physical = self.physical(file);
        let mut local = self.local.lock();
        // Fault decisions, the fetch, corruption, and checksum
        // verification all happen under the view's lock so the
        // (file, block, attempt) accounting can never interleave.
        // Spikes charge the clock directly — `Clock::charge` is
        // atomic, while `Disk::charge` would re-lock the view.
        let mut injected_corrupt = false;
        if let Some(injector) = local.faults.as_mut() {
            let outcome = injector.on_read(file.0, index);
            if let Some(spike) = outcome.spike {
                self.clock.charge(spike);
            }
            match outcome.kind {
                Some(FaultKind::Transient) => {
                    return Err(StorageError::Io(IoFault::new(
                        std::io::ErrorKind::Interrupted,
                        format!(
                            "injected transient fault reading block {index} of file {}",
                            file.0
                        ),
                    )));
                }
                Some(FaultKind::Corrupt) => injected_corrupt = true,
                None => {}
            }
        }
        // Pool lookup happens only after the fault gate: a transient
        // failure never consults the pool, and a pool hit still pays
        // spikes/corruption from this lane's own injector.
        let broker = self
            .broker
            .as_ref()
            .filter(|b| b.eligible(FileId(physical)));
        let pooled = broker.and_then(|b| b.get(physical, index));
        let from_pool = pooled.is_some();
        let fetched: Arc<Block> = match pooled {
            Some(block) => {
                self.shared_hits.fetch_add(1, Ordering::Relaxed);
                self.saved_ns
                    .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
                block
            }
            None => Arc::new(self.shared.lock().backend.read(physical, index)?),
        };
        let block = if injected_corrupt {
            // Flip one deterministic bit on the returned copy; the
            // backend's bytes stay clean so uncharged (ground-truth)
            // reads are unaffected.
            let (byte, mask) = local
                .faults
                .as_ref()
                .expect("injector set when corruption decided")
                .corrupt_bit(file.0, index, fetched.len());
            let mut copy = (*fetched).clone();
            copy.bytes_mut()[byte] ^= mask;
            Arc::new(copy)
        } else {
            fetched
        };
        let digest = self
            .shared
            .lock()
            .checksums
            .get(&(physical, index))
            .copied();
        if let Some(expected) = digest {
            self.verifies.fetch_add(1, Ordering::Relaxed);
            if block.checksum() != expected {
                return Err(StorageError::Corrupt {
                    file: file.0,
                    block: index,
                });
            }
        } else if injected_corrupt {
            // No recorded digest (block never written through this
            // disk); the injected rot is still a detected corruption.
            return Err(StorageError::Corrupt {
                file: file.0,
                block: index,
            });
        }
        drop(local);
        if !from_pool && !injected_corrupt {
            if let Some(b) = broker {
                b.publish(physical, index, Arc::clone(&block));
            }
        }
        if let Some(cache) = &self.cache {
            cache.put(file.0, index, Arc::clone(&block));
        }
        Ok(block)
    }

    /// Reads block `index` of `file` without charging the clock —
    /// for ground-truth evaluation and tests only.
    pub fn read_block_uncharged(&self, file: FileId, index: u64) -> Result<Block> {
        let physical = self.physical(file);
        self.shared.lock().backend.read(physical, index)
    }

    /// Overwrites block `index` of `file`, charging one block write.
    pub fn write_block(&self, file: FileId, index: u64, block: Block) -> Result<()> {
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        self.charge(DeviceOp::BlockWrite);
        self.writes.fetch_add(1, Ordering::Relaxed);
        let physical = self.physical(file);
        {
            let mut shared = self.shared.lock();
            shared.backend.write(physical, index, &block)?;
            shared.checksums.insert((physical, index), block.checksum());
            shared.bump_version(physical);
        }
        if let Some(cache) = &self.cache {
            cache.put(file.0, index, Arc::new(block));
        }
        Ok(())
    }

    /// Appends a block without charging the clock — for loading base
    /// relations before the query's quota is armed, and for tests.
    pub fn append_block_uncharged(&self, file: FileId, block: Block) -> Result<u64> {
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        let physical = self.physical(file);
        let mut shared = self.shared.lock();
        let index = shared.backend.append(physical, &block)?;
        shared.checksums.insert((physical, index), block.checksum());
        shared.bump_version(physical);
        Ok(index)
    }

    /// Samples the jittered duration for `op` from this view's RNG
    /// and charges the clock, returning what was charged (zero under
    /// a wall clock, where charges are free).
    fn sample_charge(&self, op: DeviceOp) -> Duration {
        if !self.clock.is_simulated() {
            return Duration::ZERO;
        }
        let d = {
            let mut local = self.local.lock();
            self.profile.sample(op, &mut local.rng)
        };
        self.clock.charge(d);
        d
    }

    /// Charges the clock for `op` (with jitter under a simulated
    /// clock) and updates the activity counters.
    pub fn charge(&self, op: DeviceOp) {
        match op {
            DeviceOp::TupleCpu(n) => {
                self.tuple_cpu.fetch_add(n, Ordering::Relaxed);
            }
            DeviceOp::Compare(n) => {
                self.compares.fetch_add(n, Ordering::Relaxed);
            }
            _ => {}
        }
        self.sample_charge(op);
    }

    /// Snapshot of the physical activity counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            block_reads: self.reads.load(Ordering::Relaxed),
            block_writes: self.writes.load(Ordering::Relaxed),
            tuple_cpu: self.tuple_cpu.load(Ordering::Relaxed),
            compares: self.compares.load(Ordering::Relaxed),
            checksum_verifies: self.verifies.load(Ordering::Relaxed),
        }
    }

    /// Shared-draw counters for this view: `(blocks served from the
    /// pool, device nanoseconds those fetches would have cost)`.
    /// Kept out of [`DiskStats`] so per-job metric snapshots stay
    /// identical whether or not a broker was armed.
    pub fn sharing(&self) -> (u64, u64) {
        (
            self.shared_hits.load(Ordering::Relaxed),
            self.saved_ns.load(Ordering::Relaxed),
        )
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("block_size", &self.block_size)
            .field("lane", &self.lane.is_some())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, WallClock};
    use std::time::Duration;

    fn sim_disk() -> (Arc<SimClock>, Arc<Disk>) {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new(clock.clone(), DeviceProfile::sun_3_60().without_jitter(), 7);
        (clock, disk)
    }

    #[test]
    fn create_append_read_round_trip() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[0] = 0x5A;
        let idx = disk.append_block(f, b.clone()).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(*disk.read_block(f, 0).unwrap(), b);
        assert_eq!(disk.num_blocks(f).unwrap(), 1);
    }

    #[test]
    fn disk_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Disk>();
        assert_send_sync::<Arc<Disk>>();
    }

    #[test]
    fn charged_io_advances_sim_clock() {
        let (clock, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let after_write = clock.elapsed();
        assert_eq!(after_write, disk.profile().block_write);
        disk.read_block(f, 0).unwrap();
        assert_eq!(
            clock.elapsed(),
            disk.profile().block_write + disk.profile().block_read
        );
    }

    #[test]
    fn uncharged_access_leaves_clock_alone() {
        let (clock, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.read_block_uncharged(f, 0).unwrap();
        assert_eq!(clock.elapsed(), Duration::ZERO);
    }

    #[test]
    fn wall_clock_disk_never_charges() {
        let clock = Arc::new(WallClock::new());
        let disk = Disk::new(clock, DeviceProfile::sun_3_60(), 1);
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        // No panic, and stats still recorded.
        assert_eq!(disk.stats().block_writes, 1);
    }

    #[test]
    fn out_of_range_and_unknown_file_errors() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        assert!(matches!(
            disk.read_block(f, 0),
            Err(StorageError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            disk.read_block(FileId(999), 0),
            Err(StorageError::UnknownFile(999))
        ));
    }

    #[test]
    fn free_file_releases() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.free_file(f);
        assert!(disk.num_blocks(f).is_err());
    }

    #[test]
    fn write_block_overwrites_in_place() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[9] = 9;
        disk.write_block(f, 0, b.clone()).unwrap();
        assert_eq!(disk.read_block_uncharged(f, 0).unwrap(), b);
        assert!(disk.write_block(f, 5, b).is_err());
    }

    #[test]
    fn file_versions_advance_on_every_content_change() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        assert_eq!(disk.file_version(f), 0, "untouched file starts at 0");
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let v1 = disk.file_version(f);
        assert!(v1 > 0, "append bumps the version");
        disk.read_block(f, 0).unwrap();
        assert_eq!(disk.file_version(f), v1, "reads never bump");
        disk.write_block(f, 0, Block::zeroed(disk.block_size()))
            .unwrap();
        let v2 = disk.file_version(f);
        assert!(v2 > v1, "in-place overwrite bumps");
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let v3 = disk.file_version(f);
        assert!(v3 > v2, "uncharged append bumps too");
        // Two files never share a version for concurrent writes: the
        // stamp is drawn from one global monotone counter.
        let g = disk.create_file();
        disk.append_block(g, Block::zeroed(disk.block_size()))
            .unwrap();
        assert!(disk.file_version(g) > v3);
        disk.free_file(f);
        assert!(
            disk.file_version(f) > v3,
            "freeing advances the version so stale cache entries die"
        );
    }

    #[test]
    fn cached_disk_charges_hits_cheaply() {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new_cached(
            clock.clone(),
            DeviceProfile::sun_3_60().without_jitter(),
            7,
            4,
        );
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let t0 = clock.elapsed();
        disk.read_block(f, 0).unwrap(); // miss
        let miss_cost = clock.elapsed() - t0;
        let t1 = clock.elapsed();
        disk.read_block(f, 0).unwrap(); // hit
        let hit_cost = clock.elapsed() - t1;
        assert_eq!(miss_cost, disk.profile().block_read);
        assert_eq!(hit_cost, disk.profile().cache_hit);
        assert!(hit_cost < miss_cost / 10);
        assert_eq!(disk.cache_stats(), Some((1, 1)));
    }

    #[test]
    fn cache_invalidated_on_free_and_eviction_respected() {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new_cached(
            clock.clone(),
            DeviceProfile::sun_3_60().without_jitter(),
            9,
            2,
        );
        let f = disk.create_file();
        for _ in 0..4 {
            disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                .unwrap();
        }
        // Read 3 distinct blocks through a 2-block cache: block 0 is
        // evicted by the time we return to it.
        for i in [0u64, 1, 2, 0] {
            disk.read_block(f, i).unwrap();
        }
        let (hits, misses) = disk.cache_stats().unwrap();
        assert_eq!(hits, 0);
        assert_eq!(misses, 4);
        // Charged writes populate the cache (write-through).
        let g = disk.create_file();
        disk.append_block(g, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.read_block(g, 0).unwrap();
        assert_eq!(disk.cache_stats().unwrap().0, 1);
        disk.free_file(g);
        assert!(disk.read_block(g, 0).is_err());
    }

    #[test]
    fn transient_fault_fails_then_recovers_on_retry() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        for _ in 0..50 {
            disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                .unwrap();
        }
        disk.set_fault_plan(crate::FaultPlan::new(21).with_transient(0.5));
        // Find a block whose first attempt fails...
        let failed = (0..50u64)
            .find(|&i| disk.read_block(f, i).is_err())
            .expect("50% transient rate fails at least one of 50 reads");
        // ...and retry it until it succeeds (attempt-varying faults).
        let recovered = (0..64).any(|_| disk.read_block(f, failed).is_ok());
        assert!(recovered, "transient fault never cleared on retry");
        let stats = disk.fault_stats().unwrap();
        assert!(stats.transient_errors >= 1);
        assert_eq!(stats.corrupt_reads, 0);
    }

    #[test]
    fn transient_errors_are_classified_transient() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(1).with_transient(1.0));
        let err = disk.read_block(f, 0).unwrap_err();
        assert!(err.is_transient(), "injected fault not transient: {err}");
    }

    #[test]
    fn corrupt_site_surfaces_checksum_mismatch_permanently() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(2).with_corruption(1.0));
        for _ in 0..3 {
            assert!(matches!(
                disk.read_block(f, 0),
                Err(StorageError::Corrupt { block: 0, .. })
            ));
        }
        // Ground truth is unaffected: the backend bytes stay clean.
        assert!(disk.read_block_uncharged(f, 0).is_ok());
        assert!(disk.fault_stats().unwrap().corrupt_reads >= 3);
    }

    #[test]
    fn latency_spikes_charge_the_sim_clock() {
        let (clock, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(3).with_spikes(1.0, Duration::from_millis(500)));
        let t0 = clock.elapsed();
        disk.read_block(f, 0).unwrap();
        let cost = clock.elapsed() - t0;
        assert_eq!(cost, disk.profile().block_read + Duration::from_millis(500));
        assert_eq!(disk.fault_stats().unwrap().latency_spikes, 1);
    }

    #[test]
    fn clear_fault_plan_restores_clean_reads() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(4).with_transient(1.0));
        assert!(disk.read_block(f, 0).is_err());
        disk.clear_fault_plan();
        assert!(disk.read_block(f, 0).is_ok());
        assert!(disk.fault_stats().is_none());
    }

    #[test]
    fn fault_sites_replay_identically_for_one_seed() {
        let run = || {
            let (_, disk) = sim_disk();
            let f = disk.create_file();
            for _ in 0..100 {
                disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                    .unwrap();
            }
            disk.set_fault_plan(
                crate::FaultPlan::new(77)
                    .with_transient(0.1)
                    .with_corruption(0.05),
            );
            (0..100u64)
                .map(|i| match disk.read_block(f, i) {
                    Ok(_) => 0u8,
                    Err(StorageError::Io(_)) => 1,
                    Err(StorageError::Corrupt { .. }) => 2,
                    Err(_) => 3,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checksums_follow_writes_and_survive_overwrite() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[7] = 7;
        disk.write_block(f, 0, b.clone()).unwrap();
        // Read verifies against the *latest* digest.
        assert_eq!(*disk.read_block(f, 0).unwrap(), b);
        // Freeing the file drops its digests.
        disk.free_file(f);
        let g = disk.create_file();
        disk.append_block_uncharged(g, Block::zeroed(disk.block_size()))
            .unwrap();
        assert!(disk.read_block(g, 0).is_ok());
    }

    #[test]
    fn checksum_verifies_are_counted_on_charged_reads_only() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        assert_eq!(disk.stats().checksum_verifies, 0);
        disk.read_block(f, 0).unwrap();
        assert_eq!(disk.stats().checksum_verifies, 1);
        // Uncharged (ground-truth) reads skip verification.
        disk.read_block_uncharged(f, 0).unwrap();
        assert_eq!(disk.stats().checksum_verifies, 1);
        disk.read_block(f, 0).unwrap();
        assert_eq!(disk.stats().checksum_verifies, 2);
    }

    #[test]
    fn cpu_charges_update_stats_and_clock() {
        let (clock, disk) = sim_disk();
        disk.charge(DeviceOp::TupleCpu(5));
        disk.charge(DeviceOp::Compare(100));
        let stats = disk.stats();
        assert_eq!(stats.tuple_cpu, 5);
        assert_eq!(stats.compares, 100);
        let expected = disk.profile().tuple_cpu * 5 + disk.profile().compare * 100;
        assert_eq!(clock.elapsed(), expected);
    }

    #[test]
    fn lane_view_shares_bytes_but_charges_its_own_clock() {
        let (root_clock, disk) = sim_disk();
        let f = disk.create_file();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[3] = 0x33;
        disk.append_block_uncharged(f, b.clone()).unwrap();
        let before = root_clock.elapsed();

        let lane_clock = Arc::new(SimClock::new());
        let lane = disk.lane_view(lane_clock.clone(), 99, 0, None);
        assert_eq!(*lane.read_block(f, 0).unwrap(), b, "same backend bytes");
        assert_eq!(lane_clock.elapsed(), lane.profile().block_read);
        assert_eq!(root_clock.elapsed(), before, "root clock untouched");
        assert_eq!(lane.stats().block_reads, 1);
        assert_eq!(disk.stats().block_reads, 0, "root counters untouched");
    }

    #[test]
    fn lane_created_files_use_virtual_ids_and_round_trip() {
        let (_, disk) = sim_disk();
        let lane_a = disk.lane_view(Arc::new(SimClock::new()), 1, 0, None);
        let lane_b = disk.lane_view(Arc::new(SimClock::new()), 2, 1, None);
        // Allocation order across lanes must not influence the ids a
        // lane sees: they are derived from the lane index alone.
        let fa = lane_a.create_file();
        let fb = lane_b.create_file();
        let fa2 = lane_a.create_file();
        assert_eq!(fa.0, LANE_FILE_TAG | (1 << 32));
        assert_eq!(fa2.0, (LANE_FILE_TAG | (1 << 32)) + 1);
        assert_eq!(fb.0, LANE_FILE_TAG | (2 << 32));
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[1] = 0xAA;
        lane_a.append_block(fa, b.clone()).unwrap();
        assert_eq!(*lane_a.read_block(fa, 0).unwrap(), b);
        assert!(lane_a.file_version(fa) > 0);
        lane_a.free_file(fa);
        assert!(lane_a.num_blocks(fa).is_err());
        // The other lane's file is unaffected.
        lane_b.append_block(fb, b.clone()).unwrap();
        assert_eq!(lane_b.num_blocks(fb).unwrap(), 1);
    }

    #[test]
    fn lane_fault_injectors_are_private_instances_of_the_armed_plan() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        for _ in 0..40 {
            disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                .unwrap();
        }
        disk.set_fault_plan(crate::FaultPlan::new(5).with_transient(0.3));
        let pattern = |lane: &Arc<Disk>| {
            (0..40u64)
                .map(|i| lane.read_block(f, i).is_err())
                .collect::<Vec<_>>()
        };
        let lane_a = disk.lane_view(Arc::new(SimClock::new()), 1, 0, None);
        let lane_b = disk.lane_view(Arc::new(SimClock::new()), 1, 1, None);
        // Same plan, fresh attempt counters: both lanes see the same
        // first-attempt pattern regardless of each other's reads.
        assert_eq!(pattern(&lane_a), pattern(&lane_b));
        assert!(disk.fault_stats().unwrap().transient_errors == 0);
        assert!(lane_a.fault_stats().unwrap().transient_errors > 0);
    }

    #[test]
    fn broker_pool_hit_is_charge_transparent() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[5] = 0x55;
        disk.append_block_uncharged(f, b.clone()).unwrap();

        // Reference lane: no broker.
        let solo_clock = Arc::new(SimClock::new());
        let solo = disk.lane_view(solo_clock.clone(), 42, 0, None);
        solo.read_block(f, 0).unwrap();

        // Brokered pair: lane 0 publishes, lane 1 hits the pool.
        let broker = SharedDrawBroker::new([f]);
        let c0 = Arc::new(SimClock::new());
        let l0 = disk.lane_view(c0.clone(), 42, 0, Some(Arc::clone(&broker)));
        let c1 = Arc::new(SimClock::new());
        let l1 = disk.lane_view(c1.clone(), 42, 1, Some(Arc::clone(&broker)));
        assert_eq!(*l0.read_block(f, 0).unwrap(), b);
        assert_eq!(*l1.read_block(f, 0).unwrap(), b);

        // Identical seed ⇒ identical charge, broker or not; the hit
        // only changes the sharing counters.
        assert_eq!(c0.elapsed(), solo_clock.elapsed());
        assert_eq!(c1.elapsed(), solo_clock.elapsed());
        assert_eq!(l0.stats(), solo.stats());
        assert_eq!(l1.stats(), solo.stats());
        assert_eq!(l0.sharing().0, 0);
        let (hits, saved) = l1.sharing();
        assert_eq!(hits, 1);
        assert!(saved > 0);
        assert_eq!(broker.shared_hits(), 1);
        assert_eq!(broker.published(), 1);
    }

    #[test]
    fn broker_ignores_unregistered_files() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let broker = SharedDrawBroker::new(std::iter::empty::<FileId>());
        let lane = disk.lane_view(Arc::new(SimClock::new()), 1, 0, Some(Arc::clone(&broker)));
        lane.read_block(f, 0).unwrap();
        lane.read_block(f, 0).unwrap();
        assert_eq!(broker.published(), 0);
        assert_eq!(lane.sharing(), (0, 0));
    }
}
