//! The block store.
//!
//! [`Disk`] is the single point through which all block I/O and all
//! modeled CPU work flows. Every charged operation samples a duration
//! from the [`DeviceProfile`] (with jitter) and advances the attached
//! [`Clock`], so against a [`crate::SimClock`] the disk *is* the
//! simulated device, and against a [`crate::WallClock`] the charges
//! are free and real time rules.
//!
//! Blocks live in memory (a reproduction of the paper's experiments
//! touches at most a few thousand 1 KB blocks per relation); the
//! charged-access discipline — not the backing medium — is what the
//! algorithms observe. `*_uncharged` accessors exist for ground-truth
//! computation (exact `COUNT` evaluation must not consume the query's
//! simulated quota).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::backend::{BlockBackend, FileBackend, MemoryBackend};
use crate::block::{Block, BLOCK_SIZE};
use crate::cache::BlockCache;
use crate::clock::Clock;
use crate::cost::{DeviceOp, DeviceProfile};
use crate::error::{IoFault, StorageError};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultStats};
use crate::Result;

/// Identifies a file on a [`Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u64);

/// Counters of physical activity on a disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Charged block reads.
    pub block_reads: u64,
    /// Charged block writes.
    pub block_writes: u64,
    /// Charged tuple-CPU units.
    pub tuple_cpu: u64,
    /// Charged comparison units.
    pub compares: u64,
    /// Checksum verifications performed on charged reads.
    #[serde(default)]
    pub checksum_verifies: u64,
}

struct DiskInner {
    backend: Box<dyn BlockBackend>,
    rng: StdRng,
    /// FNV-1a digest of every block written through this disk, keyed
    /// by (file, index); verified on every charged read.
    checksums: HashMap<(u64, u64), u64>,
    /// Active fault injector, if a [`FaultPlan`] has been armed.
    faults: Option<FaultInjector>,
    /// Global mutation counter feeding `file_versions` — strictly
    /// monotone across all files, so a freed-and-recreated file can
    /// never repeat an old version.
    write_stamp: u64,
    /// Per-file version: the value of `write_stamp` at the file's
    /// last mutation (append/overwrite). Caches that snapshot decoded
    /// file contents (the executor's `RunCache`) key their entries by
    /// this version so a later in-place write or free invalidates
    /// them instead of serving pre-mutation tuples by file id.
    file_versions: HashMap<u64, u64>,
}

impl DiskInner {
    fn bump_version(&mut self, file: u64) {
        self.write_stamp += 1;
        self.file_versions.insert(file, self.write_stamp);
    }
}

/// A block store that charges a clock for every operation.
pub struct Disk {
    inner: Mutex<DiskInner>,
    /// Buffer cache, outside `inner`: it carries its own lock
    /// striping, so concurrent readers hitting the cache never
    /// serialize on the backend lock.
    cache: Option<BlockCache>,
    clock: Arc<dyn Clock>,
    profile: DeviceProfile,
    block_size: usize,
    reads: AtomicU64,
    writes: AtomicU64,
    tuple_cpu: AtomicU64,
    compares: AtomicU64,
    verifies: AtomicU64,
}

impl Disk {
    /// Creates an in-memory disk with the paper's default 1 KB blocks.
    pub fn new(clock: Arc<dyn Clock>, profile: DeviceProfile, seed: u64) -> Arc<Self> {
        Self::with_block_size(clock, profile, BLOCK_SIZE, seed)
    }

    /// Creates an in-memory disk with a custom block size.
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn with_block_size(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        block_size: usize,
        seed: u64,
    ) -> Arc<Self> {
        assert!(block_size > 0, "block size must be positive");
        Self::with_backend(
            clock,
            profile,
            block_size,
            seed,
            Box::new(MemoryBackend::new()),
            None,
        )
    }

    /// Creates a disk whose blocks live in real files under `dir`
    /// (one file per relation/temporary) — for data sets larger than
    /// RAM. The directory must already exist.
    pub fn file_backed(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        seed: u64,
        dir: &std::path::Path,
    ) -> Result<Arc<Self>> {
        let backend = FileBackend::new(dir, BLOCK_SIZE)?;
        Ok(Self::with_backend(
            clock,
            profile,
            BLOCK_SIZE,
            seed,
            Box::new(backend),
            None,
        ))
    }

    fn with_backend(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        block_size: usize,
        seed: u64,
        backend: Box<dyn BlockBackend>,
        cache: Option<BlockCache>,
    ) -> Arc<Self> {
        Arc::new(Disk {
            inner: Mutex::new(DiskInner {
                backend,
                rng: StdRng::seed_from_u64(seed),
                checksums: HashMap::new(),
                faults: None,
                write_stamp: 0,
                file_versions: HashMap::new(),
            }),
            cache,
            clock,
            profile,
            block_size,
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            tuple_cpu: AtomicU64::new(0),
            compares: AtomicU64::new(0),
            verifies: AtomicU64::new(0),
        })
    }

    /// Creates an in-memory disk fronted by an LRU buffer cache of
    /// `cache_blocks` blocks. Charged reads that hit the cache cost
    /// [`DeviceProfile::cache_hit`] instead of a full block read.
    /// The paper's prototype has no cache; this is the middle ground
    /// between its disk-resident and main-memory designs.
    pub fn new_cached(
        clock: Arc<dyn Clock>,
        profile: DeviceProfile,
        seed: u64,
        cache_blocks: usize,
    ) -> Arc<Self> {
        Self::with_backend(
            clock,
            profile,
            BLOCK_SIZE,
            seed,
            Box::new(MemoryBackend::new()),
            Some(BlockCache::new(cache_blocks)),
        )
    }

    /// Cache hit/miss counters, if a cache is attached.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| (c.hits(), c.misses()))
    }

    /// Arms fault injection: every subsequent charged read runs
    /// through the plan's deterministic fault decisions. Replaces any
    /// previously armed plan (and its counters).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.inner.lock().faults = Some(FaultInjector::new(plan));
    }

    /// Disarms fault injection.
    pub fn clear_fault_plan(&self) {
        self.inner.lock().faults = None;
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.inner.lock().faults.as_ref().map(|i| *i.plan())
    }

    /// Counters of faults injected so far, if a plan is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.inner.lock().faults.as_ref().map(|i| i.stats())
    }

    /// The clock charged by this disk.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The device cost model in effect.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Block capacity in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Allocates a new, empty file.
    pub fn create_file(&self) -> FileId {
        FileId(self.inner.lock().backend.create_file())
    }

    /// Releases a file's blocks (temporary results between stages).
    pub fn free_file(&self, file: FileId) {
        let mut inner = self.inner.lock();
        inner.backend.free_file(file.0);
        inner.checksums.retain(|&(f, _), _| f != file.0);
        // A freed file's content is gone: advance its version so any
        // decoded-run cache entry keyed to the old version can never
        // serve again, even if a backend ever reused the id.
        inner.bump_version(file.0);
        if let Some(cache) = &self.cache {
            cache.invalidate_file(file.0);
        }
    }

    /// The file's current content version: 0 for a file never written
    /// through this disk, otherwise a strictly monotone stamp bumped
    /// on every append, overwrite, or free. Two reads of the same
    /// file at the same version are guaranteed to see the same bytes
    /// (absent injected faults), which is the invariant decoded-run
    /// caches rely on.
    pub fn file_version(&self, file: FileId) -> u64 {
        self.inner
            .lock()
            .file_versions
            .get(&file.0)
            .copied()
            .unwrap_or(0)
    }

    /// Number of blocks currently allocated to `file`.
    pub fn num_blocks(&self, file: FileId) -> Result<u64> {
        self.inner
            .lock()
            .backend
            .num_blocks(file.0)
            .ok_or(StorageError::UnknownFile(file.0))
    }

    /// Appends a block to `file`, charging one block write.
    ///
    /// # Panics
    /// Panics if the block's size differs from the disk's block size.
    pub fn append_block(&self, file: FileId, block: Block) -> Result<u64> {
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        self.charge(DeviceOp::BlockWrite);
        self.writes.fetch_add(1, Ordering::Relaxed);
        let index = {
            let mut inner = self.inner.lock();
            let index = inner.backend.append(file.0, &block)?;
            inner.checksums.insert((file.0, index), block.checksum());
            inner.bump_version(file.0);
            index
        };
        if let Some(cache) = &self.cache {
            cache.put(file.0, index, Arc::new(block));
        }
        Ok(index)
    }

    /// Reads block `index` of `file`, charging one block read (or a
    /// cache hit when the block is resident in the buffer cache).
    ///
    /// Charged reads are the fault-injection and integrity-check
    /// surface: an armed [`FaultPlan`] may fail the read transiently,
    /// add a latency spike, or corrupt the returned bytes, and every
    /// block read from the backend is verified against the checksum
    /// recorded when it was written. Cache hits skip both — a cached
    /// block was verified when it entered the cache, matching a real
    /// buffer pool where rot lives on the medium, not in RAM.
    ///
    /// Returns a shared [`Arc<Block>`]: cache hits hand back the
    /// resident block without copying its bytes.
    pub fn read_block(&self, file: FileId, index: u64) -> Result<Arc<Block>> {
        // Cache lookup first — the cache carries its own striped
        // locks, so hits never touch the backend lock.
        let cached = self
            .cache
            .as_ref()
            .and_then(|cache| cache.get(file.0, index));
        if let Some(block) = cached {
            self.charge(DeviceOp::CacheHit);
            return Ok(block);
        }
        self.charge(DeviceOp::BlockRead);
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        // Fault decisions, the backend read, corruption, and checksum
        // verification all happen under one lock acquisition so the
        // (file, block, attempt) accounting can never interleave.
        // Spikes charge the clock directly — `Clock::charge` is
        // atomic, while `Disk::charge` would re-lock `inner`.
        let mut injected_corrupt = false;
        if let Some(injector) = inner.faults.as_mut() {
            let outcome = injector.on_read(file.0, index);
            if let Some(spike) = outcome.spike {
                self.clock.charge(spike);
            }
            match outcome.kind {
                Some(FaultKind::Transient) => {
                    return Err(StorageError::Io(IoFault::new(
                        std::io::ErrorKind::Interrupted,
                        format!(
                            "injected transient fault reading block {index} of file {}",
                            file.0
                        ),
                    )));
                }
                Some(FaultKind::Corrupt) => injected_corrupt = true,
                None => {}
            }
        }
        let mut block = inner.backend.read(file.0, index)?;
        if injected_corrupt {
            // Flip one deterministic bit on the returned copy; the
            // backend's bytes stay clean so uncharged (ground-truth)
            // reads are unaffected.
            let (byte, mask) = inner
                .faults
                .as_ref()
                .expect("injector set when corruption decided")
                .corrupt_bit(file.0, index, block.len());
            block.bytes_mut()[byte] ^= mask;
        }
        if let Some(&expected) = inner.checksums.get(&(file.0, index)) {
            self.verifies.fetch_add(1, Ordering::Relaxed);
            if block.checksum() != expected {
                return Err(StorageError::Corrupt {
                    file: file.0,
                    block: index,
                });
            }
        } else if injected_corrupt {
            // No recorded digest (block never written through this
            // disk); the injected rot is still a detected corruption.
            return Err(StorageError::Corrupt {
                file: file.0,
                block: index,
            });
        }
        drop(inner);
        let block = Arc::new(block);
        if let Some(cache) = &self.cache {
            cache.put(file.0, index, Arc::clone(&block));
        }
        Ok(block)
    }

    /// Reads block `index` of `file` without charging the clock —
    /// for ground-truth evaluation and tests only.
    pub fn read_block_uncharged(&self, file: FileId, index: u64) -> Result<Block> {
        self.inner.lock().backend.read(file.0, index)
    }

    /// Overwrites block `index` of `file`, charging one block write.
    pub fn write_block(&self, file: FileId, index: u64, block: Block) -> Result<()> {
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        self.charge(DeviceOp::BlockWrite);
        self.writes.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = self.inner.lock();
            inner.backend.write(file.0, index, &block)?;
            inner.checksums.insert((file.0, index), block.checksum());
            inner.bump_version(file.0);
        }
        if let Some(cache) = &self.cache {
            cache.put(file.0, index, Arc::new(block));
        }
        Ok(())
    }

    /// Appends a block without charging the clock — for loading base
    /// relations before the query's quota is armed, and for tests.
    pub fn append_block_uncharged(&self, file: FileId, block: Block) -> Result<u64> {
        assert_eq!(block.len(), self.block_size, "block size mismatch");
        let mut inner = self.inner.lock();
        let index = inner.backend.append(file.0, &block)?;
        inner.checksums.insert((file.0, index), block.checksum());
        inner.bump_version(file.0);
        Ok(index)
    }

    /// Charges the clock for `op` (with jitter under a simulated
    /// clock) and updates the activity counters.
    pub fn charge(&self, op: DeviceOp) {
        match op {
            DeviceOp::TupleCpu(n) => {
                self.tuple_cpu.fetch_add(n, Ordering::Relaxed);
            }
            DeviceOp::Compare(n) => {
                self.compares.fetch_add(n, Ordering::Relaxed);
            }
            _ => {}
        }
        if !self.clock.is_simulated() {
            return;
        }
        let d = {
            let mut inner = self.inner.lock();
            self.profile.sample(op, &mut inner.rng)
        };
        self.clock.charge(d);
    }

    /// Snapshot of the physical activity counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            block_reads: self.reads.load(Ordering::Relaxed),
            block_writes: self.writes.load(Ordering::Relaxed),
            tuple_cpu: self.tuple_cpu.load(Ordering::Relaxed),
            compares: self.compares.load(Ordering::Relaxed),
            checksum_verifies: self.verifies.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Disk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Disk")
            .field("block_size", &self.block_size)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, WallClock};
    use std::time::Duration;

    fn sim_disk() -> (Arc<SimClock>, Arc<Disk>) {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new(clock.clone(), DeviceProfile::sun_3_60().without_jitter(), 7);
        (clock, disk)
    }

    #[test]
    fn create_append_read_round_trip() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[0] = 0x5A;
        let idx = disk.append_block(f, b.clone()).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(*disk.read_block(f, 0).unwrap(), b);
        assert_eq!(disk.num_blocks(f).unwrap(), 1);
    }

    #[test]
    fn disk_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Disk>();
        assert_send_sync::<Arc<Disk>>();
    }

    #[test]
    fn charged_io_advances_sim_clock() {
        let (clock, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let after_write = clock.elapsed();
        assert_eq!(after_write, disk.profile().block_write);
        disk.read_block(f, 0).unwrap();
        assert_eq!(
            clock.elapsed(),
            disk.profile().block_write + disk.profile().block_read
        );
    }

    #[test]
    fn uncharged_access_leaves_clock_alone() {
        let (clock, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.read_block_uncharged(f, 0).unwrap();
        assert_eq!(clock.elapsed(), Duration::ZERO);
    }

    #[test]
    fn wall_clock_disk_never_charges() {
        let clock = Arc::new(WallClock::new());
        let disk = Disk::new(clock, DeviceProfile::sun_3_60(), 1);
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        // No panic, and stats still recorded.
        assert_eq!(disk.stats().block_writes, 1);
    }

    #[test]
    fn out_of_range_and_unknown_file_errors() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        assert!(matches!(
            disk.read_block(f, 0),
            Err(StorageError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            disk.read_block(FileId(999), 0),
            Err(StorageError::UnknownFile(999))
        ));
    }

    #[test]
    fn free_file_releases() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.free_file(f);
        assert!(disk.num_blocks(f).is_err());
    }

    #[test]
    fn write_block_overwrites_in_place() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[9] = 9;
        disk.write_block(f, 0, b.clone()).unwrap();
        assert_eq!(disk.read_block_uncharged(f, 0).unwrap(), b);
        assert!(disk.write_block(f, 5, b).is_err());
    }

    #[test]
    fn file_versions_advance_on_every_content_change() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        assert_eq!(disk.file_version(f), 0, "untouched file starts at 0");
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let v1 = disk.file_version(f);
        assert!(v1 > 0, "append bumps the version");
        disk.read_block(f, 0).unwrap();
        assert_eq!(disk.file_version(f), v1, "reads never bump");
        disk.write_block(f, 0, Block::zeroed(disk.block_size()))
            .unwrap();
        let v2 = disk.file_version(f);
        assert!(v2 > v1, "in-place overwrite bumps");
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let v3 = disk.file_version(f);
        assert!(v3 > v2, "uncharged append bumps too");
        // Two files never share a version for concurrent writes: the
        // stamp is drawn from one global monotone counter.
        let g = disk.create_file();
        disk.append_block(g, Block::zeroed(disk.block_size()))
            .unwrap();
        assert!(disk.file_version(g) > v3);
        disk.free_file(f);
        assert!(
            disk.file_version(f) > v3,
            "freeing advances the version so stale cache entries die"
        );
    }

    #[test]
    fn cached_disk_charges_hits_cheaply() {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new_cached(
            clock.clone(),
            DeviceProfile::sun_3_60().without_jitter(),
            7,
            4,
        );
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let t0 = clock.elapsed();
        disk.read_block(f, 0).unwrap(); // miss
        let miss_cost = clock.elapsed() - t0;
        let t1 = clock.elapsed();
        disk.read_block(f, 0).unwrap(); // hit
        let hit_cost = clock.elapsed() - t1;
        assert_eq!(miss_cost, disk.profile().block_read);
        assert_eq!(hit_cost, disk.profile().cache_hit);
        assert!(hit_cost < miss_cost / 10);
        assert_eq!(disk.cache_stats(), Some((1, 1)));
    }

    #[test]
    fn cache_invalidated_on_free_and_eviction_respected() {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new_cached(
            clock.clone(),
            DeviceProfile::sun_3_60().without_jitter(),
            9,
            2,
        );
        let f = disk.create_file();
        for _ in 0..4 {
            disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                .unwrap();
        }
        // Read 3 distinct blocks through a 2-block cache: block 0 is
        // evicted by the time we return to it.
        for i in [0u64, 1, 2, 0] {
            disk.read_block(f, i).unwrap();
        }
        let (hits, misses) = disk.cache_stats().unwrap();
        assert_eq!(hits, 0);
        assert_eq!(misses, 4);
        // Charged writes populate the cache (write-through).
        let g = disk.create_file();
        disk.append_block(g, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.read_block(g, 0).unwrap();
        assert_eq!(disk.cache_stats().unwrap().0, 1);
        disk.free_file(g);
        assert!(disk.read_block(g, 0).is_err());
    }

    #[test]
    fn transient_fault_fails_then_recovers_on_retry() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        for _ in 0..50 {
            disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                .unwrap();
        }
        disk.set_fault_plan(crate::FaultPlan::new(21).with_transient(0.5));
        // Find a block whose first attempt fails...
        let failed = (0..50u64)
            .find(|&i| disk.read_block(f, i).is_err())
            .expect("50% transient rate fails at least one of 50 reads");
        // ...and retry it until it succeeds (attempt-varying faults).
        let recovered = (0..64).any(|_| disk.read_block(f, failed).is_ok());
        assert!(recovered, "transient fault never cleared on retry");
        let stats = disk.fault_stats().unwrap();
        assert!(stats.transient_errors >= 1);
        assert_eq!(stats.corrupt_reads, 0);
    }

    #[test]
    fn transient_errors_are_classified_transient() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(1).with_transient(1.0));
        let err = disk.read_block(f, 0).unwrap_err();
        assert!(err.is_transient(), "injected fault not transient: {err}");
    }

    #[test]
    fn corrupt_site_surfaces_checksum_mismatch_permanently() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(2).with_corruption(1.0));
        for _ in 0..3 {
            assert!(matches!(
                disk.read_block(f, 0),
                Err(StorageError::Corrupt { block: 0, .. })
            ));
        }
        // Ground truth is unaffected: the backend bytes stay clean.
        assert!(disk.read_block_uncharged(f, 0).is_ok());
        assert!(disk.fault_stats().unwrap().corrupt_reads >= 3);
    }

    #[test]
    fn latency_spikes_charge_the_sim_clock() {
        let (clock, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(3).with_spikes(1.0, Duration::from_millis(500)));
        let t0 = clock.elapsed();
        disk.read_block(f, 0).unwrap();
        let cost = clock.elapsed() - t0;
        assert_eq!(cost, disk.profile().block_read + Duration::from_millis(500));
        assert_eq!(disk.fault_stats().unwrap().latency_spikes, 1);
    }

    #[test]
    fn clear_fault_plan_restores_clean_reads() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
            .unwrap();
        disk.set_fault_plan(crate::FaultPlan::new(4).with_transient(1.0));
        assert!(disk.read_block(f, 0).is_err());
        disk.clear_fault_plan();
        assert!(disk.read_block(f, 0).is_ok());
        assert!(disk.fault_stats().is_none());
    }

    #[test]
    fn fault_sites_replay_identically_for_one_seed() {
        let run = || {
            let (_, disk) = sim_disk();
            let f = disk.create_file();
            for _ in 0..100 {
                disk.append_block_uncharged(f, Block::zeroed(disk.block_size()))
                    .unwrap();
            }
            disk.set_fault_plan(
                crate::FaultPlan::new(77)
                    .with_transient(0.1)
                    .with_corruption(0.05),
            );
            (0..100u64)
                .map(|i| match disk.read_block(f, i) {
                    Ok(_) => 0u8,
                    Err(StorageError::Io(_)) => 1,
                    Err(StorageError::Corrupt { .. }) => 2,
                    Err(_) => 3,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn checksums_follow_writes_and_survive_overwrite() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        let mut b = Block::zeroed(disk.block_size());
        b.bytes_mut()[7] = 7;
        disk.write_block(f, 0, b.clone()).unwrap();
        // Read verifies against the *latest* digest.
        assert_eq!(*disk.read_block(f, 0).unwrap(), b);
        // Freeing the file drops its digests.
        disk.free_file(f);
        let g = disk.create_file();
        disk.append_block_uncharged(g, Block::zeroed(disk.block_size()))
            .unwrap();
        assert!(disk.read_block(g, 0).is_ok());
    }

    #[test]
    fn checksum_verifies_are_counted_on_charged_reads_only() {
        let (_, disk) = sim_disk();
        let f = disk.create_file();
        disk.append_block(f, Block::zeroed(disk.block_size()))
            .unwrap();
        assert_eq!(disk.stats().checksum_verifies, 0);
        disk.read_block(f, 0).unwrap();
        assert_eq!(disk.stats().checksum_verifies, 1);
        // Uncharged (ground-truth) reads skip verification.
        disk.read_block_uncharged(f, 0).unwrap();
        assert_eq!(disk.stats().checksum_verifies, 1);
        disk.read_block(f, 0).unwrap();
        assert_eq!(disk.stats().checksum_verifies, 2);
    }

    #[test]
    fn cpu_charges_update_stats_and_clock() {
        let (clock, disk) = sim_disk();
        disk.charge(DeviceOp::TupleCpu(5));
        disk.charge(DeviceOp::Compare(100));
        let stats = disk.stats();
        assert_eq!(stats.tuple_cpu, 5);
        assert_eq!(stats.compares, 100);
        let expected = disk.profile().tuple_cpu * 5 + disk.profile().compare * 100;
        assert_eq!(clock.elapsed(), expected);
    }
}
