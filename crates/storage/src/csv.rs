//! Minimal CSV ingestion for loading relations from files.
//!
//! Supports the common subset: comma separation, `"`-quoted fields
//! with `""` escapes, an optional header row, and per-column parsing
//! driven by a [`Schema`]. Deliberately small — this is a loading
//! convenience for the examples and the CLI, not a general CSV
//! library.

use std::io::BufRead;

use crate::error::StorageError;
use crate::schema::{ColumnType, Schema};
use crate::tuple::{Tuple, Value};
use crate::Result;

/// Splits one CSV record into fields (RFC-4180-style quoting).
fn split_record(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                other => field.push(other),
            }
        } else {
            match c {
                '"' if field.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut field)),
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StorageError::io("unterminated quoted CSV field"));
    }
    fields.push(field);
    Ok(fields)
}

fn parse_value(text: &str, ty: ColumnType, line_no: usize) -> Result<Value> {
    let err = |what: &str| {
        StorageError::io(format!(
            "CSV line {line_no}: cannot parse {text:?} as {what}"
        ))
    };
    match ty {
        ColumnType::Int => text
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err("integer")),
        ColumnType::Float => text
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err("float")),
        ColumnType::Bool => match text.trim().to_ascii_lowercase().as_str() {
            "true" | "1" | "yes" => Ok(Value::Bool(true)),
            "false" | "0" | "no" => Ok(Value::Bool(false)),
            _ => Err(err("boolean")),
        },
        ColumnType::Str { .. } => Ok(Value::Str(text.to_owned())),
    }
}

/// Reads CSV records conforming to `schema` from `reader`.
///
/// When `has_header` is set, the first non-empty line is skipped.
/// Every record must have exactly the schema's arity; values are
/// validated against the column types (including fixed string
/// widths).
pub fn read_csv<R: BufRead>(reader: R, schema: &Schema, has_header: bool) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::new();
    let mut skipped_header = !has_header;
    for (i, line) in reader.lines().enumerate() {
        let line_no = i + 1;
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if !skipped_header {
            skipped_header = true;
            continue;
        }
        let fields = split_record(&line)?;
        if fields.len() != schema.arity() {
            return Err(StorageError::io(format!(
                "CSV line {line_no}: {} fields, schema expects {}",
                fields.len(),
                schema.arity()
            )));
        }
        let values: Result<Vec<Value>> = fields
            .iter()
            .zip(schema.columns())
            .map(|(f, col)| parse_value(f, col.ty, line_no))
            .collect();
        let tuple = Tuple::new(values?);
        schema.check_tuple(&tuple)?;
        tuples.push(tuple);
    }
    Ok(tuples)
}

/// Parses a compact schema spec like `id:int,price:float,name:str16`
/// (types: `int`, `float`, `bool`, `strN`), optionally padding
/// records to `pad_to` bytes.
pub fn parse_schema_spec(spec: &str, pad_to: Option<usize>) -> Result<Schema> {
    let mut columns = Vec::new();
    for part in spec.split(',') {
        let (name, ty_text) = part
            .split_once(':')
            .ok_or_else(|| StorageError::io(format!("bad column spec {part:?}")))?;
        let name = name.trim();
        let ty_text = ty_text.trim();
        let ty = match ty_text {
            "int" => ColumnType::Int,
            "float" => ColumnType::Float,
            "bool" => ColumnType::Bool,
            s if s.starts_with("str") => {
                let width: u16 = s[3..]
                    .parse()
                    .map_err(|_| StorageError::io(format!("bad string width in {part:?}")))?;
                ColumnType::Str { width }
            }
            _ => {
                return Err(StorageError::io(format!(
                    "unknown column type {ty_text:?} (use int, float, bool, strN)"
                )))
            }
        };
        if name.is_empty() {
            return Err(StorageError::io(format!("empty column name in {part:?}")));
        }
        columns.push((name.to_owned(), ty));
    }
    if columns.is_empty() {
        return Err(StorageError::io("empty schema spec"));
    }
    let schema = Schema::new(columns);
    Ok(match pad_to {
        Some(n) => schema.padded_to(n),
        None => schema,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("price", ColumnType::Float),
            ("ok", ColumnType::Bool),
            ("name", ColumnType::Str { width: 8 }),
        ])
    }

    #[test]
    fn parses_plain_records() {
        let csv = "id,price,ok,name\n1,2.5,true,ada\n2,3.0,no,bob\n";
        let rows = read_csv(Cursor::new(csv), &schema(), true).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].value(0), &Value::Int(1));
        assert_eq!(rows[0].value(1), &Value::Float(2.5));
        assert_eq!(rows[1].value(2), &Value::Bool(false));
        assert_eq!(rows[1].value(3), &Value::Str("bob".into()));
    }

    #[test]
    fn quoted_fields_with_commas_and_escapes() {
        let csv = r#"7,1.0,yes,"a,b ""q"""
"#;
        let rows = read_csv(Cursor::new(csv), &schema(), false).unwrap();
        assert_eq!(rows[0].value(3), &Value::Str("a,b \"q\"".into()));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "\n1,1.0,1,x\n\n2,2.0,0,y\n";
        let rows = read_csv(Cursor::new(csv), &schema(), false).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let csv = "1,1.0,true,x\nnope,2.0,true,y\n";
        let err = read_csv(Cursor::new(csv), &schema(), false).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");

        let short = "1,1.0\n";
        let err = read_csv(Cursor::new(short), &schema(), false).unwrap_err();
        assert!(err.to_string().contains("2 fields"), "{err}");

        let unterminated = "1,1.0,true,\"oops\n";
        assert!(read_csv(Cursor::new(unterminated), &schema(), false).is_err());
    }

    #[test]
    fn overlong_string_rejected_by_schema() {
        let csv = "1,1.0,true,muchtoolongname\n";
        assert!(read_csv(Cursor::new(csv), &schema(), false).is_err());
    }

    #[test]
    fn schema_spec_round_trip() {
        let s = parse_schema_spec("id:int,price:float,ok:bool,name:str8", None).unwrap();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.columns()[3].ty, ColumnType::Str { width: 8 });
        assert_eq!(s.columns()[0].name, "id");

        let padded = parse_schema_spec("a:int", Some(200)).unwrap();
        assert_eq!(padded.record_size(), 200);

        assert!(parse_schema_spec("", None).is_err());
        assert!(parse_schema_spec("a:int,b", None).is_err());
        assert!(parse_schema_spec("a:uuid", None).is_err());
        assert!(parse_schema_spec("a:strx", None).is_err());
        assert!(parse_schema_spec(":int", None).is_err());
    }
}
