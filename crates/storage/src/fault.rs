//! Deterministic fault injection for the storage layer.
//!
//! The paper's contract is *bounded response time no matter what*: a
//! storage hiccup must widen the error bound of the estimate, never
//! break the time bound. To test that contract we need faults that are
//! (a) realistic — transient read errors, permanent bit rot, latency
//! spikes — and (b) perfectly reproducible, so a failing chaos run can
//! be replayed bit-for-bit from its seed.
//!
//! A [`FaultPlan`] describes *rates*; the [`FaultInjector`] turns the
//! plan into concrete per-site decisions by hashing
//! `(seed, file, block, attempt)` with a splitmix64-style mixer.
//! Because the decision is a pure function of those inputs, the same
//! plan and the same read sequence always produce the same fault
//! sites — no RNG stream to keep in sync, no ordering hazards.
//!
//! Fault semantics:
//!
//! * **Transient** faults are decided per *attempt*: a block that
//!   failed once may succeed on retry, exactly like a real
//!   `EINTR`/timeout.
//! * **Corruption** is decided per *site* (file, block) independent of
//!   the attempt: a rotten block stays rotten, so retrying is useless
//!   and the caller must degrade.
//! * **Latency spikes** add a fixed extra duration to the charged cost
//!   of the read — they consume quota but carry no error.

use std::collections::HashMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Rates and seed for injected storage faults.
///
/// All rates are probabilities in `[0, 1]` evaluated independently
/// per charged block read. The default plan injects nothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for the deterministic fault decisions.
    pub seed: u64,
    /// Probability a read attempt fails with a transient I/O error.
    pub transient_rate: f64,
    /// Probability a block site is permanently corrupt (bit flip
    /// surfaced as a checksum mismatch on every read).
    pub corrupt_rate: f64,
    /// Probability a read suffers an extra latency spike.
    pub spike_rate: f64,
    /// Duration of one latency spike.
    pub spike: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and all fault rates zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_rate: 0.0,
            corrupt_rate: 0.0,
            spike_rate: 0.0,
            spike: Duration::ZERO,
        }
    }

    /// Sets the transient read-failure rate.
    pub fn with_transient(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.transient_rate = rate;
        self
    }

    /// Sets the permanent corruption rate.
    pub fn with_corruption(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.corrupt_rate = rate;
        self
    }

    /// Sets the latency-spike rate and spike duration.
    pub fn with_spikes(mut self, rate: f64, spike: Duration) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.spike_rate = rate;
        self.spike = spike;
        self
    }

    /// True if the plan can never produce a fault.
    pub fn is_noop(&self) -> bool {
        self.transient_rate == 0.0 && self.corrupt_rate == 0.0 && self.spike_rate == 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new(0)
    }
}

/// Counters of faults actually injected, for report plumbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transient read errors surfaced to callers.
    pub transient_errors: u64,
    /// Reads that returned a corrupt block (checksum mismatch).
    pub corrupt_reads: u64,
    /// Latency spikes charged to the clock.
    pub latency_spikes: u64,
}

/// What the injector decided for one read attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultKind {
    /// The read fails with a retryable I/O error.
    Transient,
    /// The block's content is corrupted (deterministic bit flip).
    Corrupt,
}

/// Decision for one read attempt: an optional latency spike plus an
/// optional failure.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FaultOutcome {
    pub(crate) spike: Option<Duration>,
    pub(crate) kind: Option<FaultKind>,
}

/// Turns a [`FaultPlan`] into deterministic per-read decisions.
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    /// Read attempts seen per (file, block) site, so transient faults
    /// can differ between retries of the same block.
    attempts: HashMap<(u64, u64), u64>,
    stats: FaultStats,
}

// Domain-separation salts for the three independent fault decisions.
const SALT_TRANSIENT: u64 = 0x7452_414e_5349_454e; // "TRANSIEN"
const SALT_CORRUPT: u64 = 0x434f_5252_5550_5421; // "CORRUPT!"
const SALT_SPIKE: u64 = 0x5350_494b_4553_5049; // "SPIKESPI"

/// splitmix64 finalizer: a fast, well-mixed 64→64 bit hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a fault-decision tuple into a uniform `[0, 1)` value.
fn decide(seed: u64, salt: u64, file: u64, block: u64, attempt: u64) -> f64 {
    let mut h = mix(seed ^ salt);
    h = mix(h ^ file);
    h = mix(h ^ block.wrapping_mul(0x0000_0000_85eb_ca6b));
    h = mix(h ^ attempt.wrapping_mul(0xc2b2_ae35_0000_0001));
    // Top 53 bits → uniform double in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            attempts: HashMap::new(),
            stats: FaultStats::default(),
        }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// True if the site (file, block) is permanently corrupt under
    /// this plan. Pure — does not touch counters.
    pub(crate) fn site_is_corrupt(&self, file: u64, block: u64) -> bool {
        decide(self.plan.seed, SALT_CORRUPT, file, block, 0) < self.plan.corrupt_rate
    }

    /// Decides the outcome of one charged read attempt and updates
    /// the injected-fault counters.
    pub(crate) fn on_read(&mut self, file: u64, block: u64) -> FaultOutcome {
        let attempt = {
            let n = self.attempts.entry((file, block)).or_insert(0);
            *n += 1;
            *n
        };
        let spike = if self.plan.spike_rate > 0.0
            && decide(self.plan.seed, SALT_SPIKE, file, block, attempt) < self.plan.spike_rate
        {
            self.stats.latency_spikes += 1;
            Some(self.plan.spike)
        } else {
            None
        };
        // Transient first: a corrupt site can still fail transiently,
        // and the retry that follows will then discover the rot.
        let kind = if self.plan.transient_rate > 0.0
            && decide(self.plan.seed, SALT_TRANSIENT, file, block, attempt)
                < self.plan.transient_rate
        {
            self.stats.transient_errors += 1;
            Some(FaultKind::Transient)
        } else if self.site_is_corrupt(file, block) {
            self.stats.corrupt_reads += 1;
            Some(FaultKind::Corrupt)
        } else {
            None
        };
        FaultOutcome { spike, kind }
    }

    /// Picks the bit to flip when corrupting this site — a pure
    /// function of the seed and site, so replays corrupt identically.
    pub(crate) fn corrupt_bit(&self, file: u64, block: u64, block_bytes: usize) -> (usize, u8) {
        let h = mix(mix(self.plan.seed ^ SALT_CORRUPT ^ 0x1) ^ mix(file) ^ block);
        let byte = (h as usize) % block_bytes.max(1);
        let bit = ((h >> 32) % 8) as u8;
        (byte, 1 << bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::new(42));
        for b in 0..1_000 {
            let out = inj.on_read(0, b);
            assert!(out.kind.is_none());
            assert!(out.spike.is_none());
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan::new(7)
            .with_transient(0.2)
            .with_corruption(0.05)
            .with_spikes(0.1, Duration::from_millis(50));
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            (0..500)
                .map(|b| {
                    let o = inj.on_read(3, b);
                    (o.kind, o.spike)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(plan), run(plan));
    }

    #[test]
    fn different_seeds_give_different_fault_sites() {
        let mk = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::new(seed).with_transient(0.1));
            (0..500)
                .filter(|&b| inj.on_read(0, b).kind.is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn rates_are_approximately_honored() {
        let mut inj = FaultInjector::new(FaultPlan::new(11).with_transient(0.10));
        let n = 20_000;
        let failures = (0..n).filter(|&b| inj.on_read(0, b).kind.is_some()).count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.10).abs() < 0.01, "observed rate {rate}");
    }

    #[test]
    fn corruption_is_permanent_per_site() {
        let mut inj = FaultInjector::new(FaultPlan::new(5).with_corruption(0.2));
        let corrupt_sites: Vec<u64> = (0..200).filter(|&b| inj.site_is_corrupt(1, b)).collect();
        assert!(!corrupt_sites.is_empty());
        for &b in &corrupt_sites {
            // Every repeated read of a rotten site stays rotten.
            for _ in 0..3 {
                assert_eq!(inj.on_read(1, b).kind, Some(FaultKind::Corrupt));
            }
        }
    }

    #[test]
    fn transient_faults_vary_across_attempts() {
        let mut inj = FaultInjector::new(FaultPlan::new(9).with_transient(0.5));
        // With a 50% rate, 64 attempts on one site all failing (or all
        // succeeding) has probability 2^-63 — vary-by-attempt works.
        let outcomes: Vec<bool> = (0..64).map(|_| inj.on_read(2, 17).kind.is_some()).collect();
        assert!(outcomes.iter().any(|&f| f));
        assert!(outcomes.iter().any(|&f| !f));
    }

    #[test]
    fn corrupt_bit_is_stable_and_in_range() {
        let inj = FaultInjector::new(FaultPlan::new(3).with_corruption(1.0));
        let (byte, mask) = inj.corrupt_bit(4, 9, 1024);
        assert_eq!((byte, mask), inj.corrupt_bit(4, 9, 1024));
        assert!(byte < 1024);
        assert_eq!(mask.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn out_of_range_rate_is_rejected() {
        let _ = FaultPlan::new(0).with_transient(1.5);
    }

    #[test]
    fn plan_serializes_round_trip() {
        let plan = FaultPlan::new(99)
            .with_transient(0.05)
            .with_corruption(0.01)
            .with_spikes(0.02, Duration::from_millis(120));
        // Serialization is unavailable under the offline stub serde
        // (see offline/README.md); real serde never takes this branch.
        let Ok(json) = serde_json::to_string(&plan) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
