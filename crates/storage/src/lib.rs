//! # eram-storage
//!
//! Block-based storage substrate for the ERAM time-constrained query
//! engine — a Rust reproduction of the prototype DBMS from Hou,
//! Özsoyoğlu & Taneja, *"Processing Aggregate Relational Queries with
//! Hard Time Constraints"*, SIGMOD 1989.
//!
//! The paper's algorithms touch storage exclusively through **disk
//! blocks**: a block is both the unit of I/O cost and the unit of
//! cluster sampling ("a disk block is taken as a sample unit"). This
//! crate provides exactly that interface:
//!
//! * [`Schema`] / [`Value`] / [`Tuple`] — fixed-width tuple layout
//!   (the paper's experiments use 200-byte tuples in 1 KB blocks,
//!   5 tuples per block);
//! * [`Block`] — a fixed-size page of encoded tuples;
//! * [`HeapFile`] — an unordered file of blocks holding one relation
//!   instance or one temporary (intermediate) result;
//! * [`Disk`] — the block store. Every block read/write and every
//!   charged CPU step advances a [`Clock`];
//! * [`Clock`] — *simulated* ([`SimClock`]) or *wall* ([`WallClock`])
//!   time. The simulated clock plus a [`DeviceProfile`] cost model
//!   reproduces the 1989 SUN 3/60 timing regime deterministically, so
//!   the paper's 200-run experiment sweeps run in milliseconds while
//!   preserving every time-control decision;
//! * [`Deadline`] — a time quota measured against a clock, used by the
//!   executor to implement hard time constraints;
//! * [`FaultPlan`] — seeded, deterministic fault injection (transient
//!   read errors, permanent bit rot caught by per-block checksums,
//!   latency spikes) so the hard-deadline contract can be tested under
//!   storage failure.
//!
//! The crate is self-contained (no I/O beyond an optional file-backed
//! block store) and is the bottom layer of the workspace:
//! `storage ← relalg ← sampling ← core ← bench`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backend;
pub mod block;
pub mod broker;
pub mod cache;
pub mod clock;
pub mod columnar;
pub mod cost;
pub mod csv;
pub mod disk;
pub mod error;
pub mod fault;
pub mod heap;
pub mod ingest;
pub mod rng;
pub mod schema;
pub mod tuple;

pub use block::{Block, BlockId, BLOCK_SIZE};
pub use broker::SharedDrawBroker;
pub use cache::{BlockCache, RunCache};
pub use clock::{Clock, Deadline, SimClock, WallClock};
pub use columnar::{ColumnData, ColumnarBlock};
pub use cost::{DeviceOp, DeviceProfile};
pub use csv::{parse_schema_spec, read_csv};
pub use disk::{Disk, DiskStats, FileId};
pub use error::{IoFault, StorageError};
pub use fault::{FaultPlan, FaultStats};
pub use heap::HeapFile;
pub use ingest::{
    read_tuples, write_parquet_subset, CsvSource, IngestFormat, JsonLinesSource, ParquetSource,
    TupleSource,
};
pub use rng::SeedSeq;
pub use schema::{ColumnType, Schema};
pub use tuple::{Tuple, Value};

/// Convenient crate-wide result type.
pub type Result<T> = std::result::Result<T, StorageError>;
