//! Runtime values and tuples.
//!
//! [`Value`] is the dynamic value type flowing through the engine.
//! It implements a *total* order (floats via `total_cmp`, cross-type
//! comparisons by type tag) and a consistent `Hash`, so tuples can be
//! sorted, merged, and deduplicated by the sort-based operator
//! implementations of the paper's Section 4 without special cases.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

/// A dynamically typed value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    fn type_rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Bool(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The bool payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Int(x) => x.hash(state),
            // total_cmp-compatible hashing: equal-by-total_cmp floats
            // share a bit pattern.
            Value::Float(x) => x.to_bits().hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(x) => write!(f, "{x}"),
            // Debug formatting keeps the decimal point ("1.0", not
            // "1"), so floats stay distinguishable from ints in the
            // textual query language.
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Int(x)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

/// A row of values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// All values, in column order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at column `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn value(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// A new tuple holding the values at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// A new tuple holding this tuple's values followed by `other`'s
    /// (join output construction).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }

    /// Consumes the tuple, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn value_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp puts NaN above all finite values.
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn eq_values_hash_equal() {
        let a = Value::Float(2.5);
        let b = Value::Float(2.5);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn cross_type_order_is_total() {
        let vals = [
            Value::Int(0),
            Value::Float(0.0),
            Value::Bool(false),
            Value::Str(String::new()),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn tuple_project_and_concat() {
        let t = Tuple::new(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(
            t.project(&[2, 0]),
            Tuple::new(vec![Value::Int(3), Value::Int(1)])
        );
        let u = Tuple::new(vec![Value::Bool(true)]);
        assert_eq!(t.concat(&u).arity(), 4);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), None);
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn display_formats() {
        let t = Tuple::new(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(t.to_string(), "(1, \"a\")");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
    }
}
