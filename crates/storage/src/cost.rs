//! Device cost model.
//!
//! The paper's time-cost formulas (Section 4) decompose every operator
//! into block reads, block writes, per-tuple CPU work, and per-
//! comparison sort/merge work, each with a coefficient "assigned
//! initial values based on the experimental relations" and adjusted at
//! run time. [`DeviceProfile`] is the *ground truth* those formulas
//! try to learn: when running against a [`crate::SimClock`], every
//! storage or CPU step samples a duration from the profile and charges
//! the clock.
//!
//! The default profile, [`DeviceProfile::sun_3_60`], is calibrated so
//! the paper's workloads (10 000-tuple relations, 1 KB blocks, quotas
//! of 2.5–10 s) land in the same operating regime as the published
//! tables: tens of blocks per quota for selection, full-fulfillment
//! intersection/join dominated by sort and merge work.
//!
//! Multiplicative jitter models run-to-run variation of a real device
//! (seek distance, bus contention). Together with sampling variation
//! in the estimated selectivities, it is what makes the *risk of
//! overspending* a real, measurable quantity instead of a scripted
//! one.

use std::time::Duration;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One chargeable unit of device work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceOp {
    /// Read one block from disk (seek + transfer).
    BlockRead,
    /// Write one block to disk.
    BlockWrite,
    /// Process `n` tuples on the CPU (decode, predicate check, copy).
    TupleCpu(u64),
    /// Perform `n` key comparisons (sorting, merging).
    Compare(u64),
    /// Fixed per-stage bookkeeping (sample-size determination, random
    /// block selection, estimator update).
    StageOverhead,
    /// Serve one block from the buffer cache (no seek, no transfer —
    /// just lookup and copy).
    CacheHit,
}

/// Nominal per-unit costs of a device plus a jitter level.
///
/// All durations are *nominal* means; [`DeviceProfile::sample`]
/// applies multiplicative noise when jitter is non-zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Cost of reading one block.
    pub block_read: Duration,
    /// Cost of writing one block.
    pub block_write: Duration,
    /// CPU cost per tuple processed.
    pub tuple_cpu: Duration,
    /// CPU cost per comparison.
    pub compare: Duration,
    /// Fixed cost per evaluation stage.
    pub stage_overhead: Duration,
    /// Cost of serving a block from the buffer cache.
    pub cache_hit: Duration,
    /// Relative standard deviation of multiplicative jitter
    /// (0.0 = deterministic device).
    pub jitter_rel: f64,
}

impl DeviceProfile {
    /// Profile calibrated to the paper's SUN 3/60 regime: ~30 ms block
    /// I/O, millisecond-scale per-tuple CPU, noticeable per-stage
    /// overhead, and ~8 % run-to-run jitter.
    pub fn sun_3_60() -> Self {
        DeviceProfile {
            block_read: Duration::from_micros(30_000),
            block_write: Duration::from_micros(32_000),
            tuple_cpu: Duration::from_micros(9_000),
            compare: Duration::from_micros(450),
            stage_overhead: Duration::from_micros(180_000),
            cache_hit: Duration::from_micros(600),
            jitter_rel: 0.08,
        }
    }

    /// A modern NVMe-and-GHz-CPU profile, for library users who want
    /// simulated time at contemporary scale (quotas of milliseconds).
    pub fn modern() -> Self {
        DeviceProfile {
            block_read: Duration::from_nanos(18_000),
            block_write: Duration::from_nanos(25_000),
            tuple_cpu: Duration::from_nanos(120),
            compare: Duration::from_nanos(25),
            stage_overhead: Duration::from_micros(40),
            cache_hit: Duration::from_nanos(900),
            jitter_rel: 0.05,
        }
    }

    /// Returns a copy with jitter disabled (fully deterministic costs).
    pub fn without_jitter(mut self) -> Self {
        self.jitter_rel = 0.0;
        self
    }

    /// Returns a copy with the given relative jitter.
    pub fn with_jitter(mut self, jitter_rel: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&jitter_rel),
            "relative jitter must be in [0, 1)"
        );
        self.jitter_rel = jitter_rel;
        self
    }

    /// Nominal (mean) cost of an operation — what an oracle cost
    /// formula would predict.
    pub fn nominal(&self, op: DeviceOp) -> Duration {
        match op {
            DeviceOp::BlockRead => self.block_read,
            DeviceOp::BlockWrite => self.block_write,
            DeviceOp::TupleCpu(n) => mul_dur(self.tuple_cpu, n),
            DeviceOp::Compare(n) => mul_dur(self.compare, n),
            DeviceOp::StageOverhead => self.stage_overhead,
            DeviceOp::CacheHit => self.cache_hit,
        }
    }

    /// Cost of an operation with multiplicative jitter applied.
    ///
    /// The jitter factor is `max(0.05, 1 + jitter_rel · z)` with
    /// `z ~ N(0, 1)`, i.e. approximately lognormal-shaped noise that
    /// never goes negative.
    pub fn sample<R: Rng + ?Sized>(&self, op: DeviceOp, rng: &mut R) -> Duration {
        let base = self.nominal(op);
        if self.jitter_rel == 0.0 {
            return base;
        }
        let z = standard_normal(rng);
        let factor = (1.0 + self.jitter_rel * z).max(0.05);
        base.mul_f64(factor)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::sun_3_60()
    }
}

/// Multiplies a duration by an integer count without overflow on the
/// nanosecond representation.
fn mul_dur(d: Duration, n: u64) -> Duration {
    let nanos = d.as_nanos().saturating_mul(u128::from(n));
    let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
    Duration::from_nanos(nanos)
}

/// Draws one standard-normal variate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by mapping the open unit interval.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn nominal_costs_scale_with_counts() {
        let p = DeviceProfile::sun_3_60().without_jitter();
        assert_eq!(
            p.nominal(DeviceOp::TupleCpu(10)),
            p.nominal(DeviceOp::TupleCpu(1)) * 10
        );
        assert_eq!(p.nominal(DeviceOp::Compare(0)), Duration::ZERO);
    }

    #[test]
    fn sample_without_jitter_is_nominal() {
        let p = DeviceProfile::sun_3_60().without_jitter();
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(p.sample(DeviceOp::BlockRead, &mut rng), p.block_read);
    }

    #[test]
    fn jittered_samples_center_on_nominal() {
        let p = DeviceProfile::sun_3_60().with_jitter(0.1);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| p.sample(DeviceOp::BlockRead, &mut rng).as_secs_f64())
            .sum();
        let mean = total / f64::from(n);
        let nominal = p.block_read.as_secs_f64();
        assert!(
            (mean - nominal).abs() < 0.01 * nominal,
            "mean {mean} vs nominal {nominal}"
        );
    }

    #[test]
    fn jittered_samples_vary() {
        let p = DeviceProfile::sun_3_60().with_jitter(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let a = p.sample(DeviceOp::BlockRead, &mut rng);
        let b = p.sample(DeviceOp::BlockRead, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn sample_never_negative_even_with_large_jitter() {
        let p = DeviceProfile::sun_3_60().with_jitter(0.9);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let d = p.sample(DeviceOp::BlockWrite, &mut rng);
            assert!(d > Duration::ZERO);
        }
    }

    #[test]
    #[should_panic(expected = "relative jitter")]
    fn with_jitter_rejects_out_of_range() {
        let _ = DeviceProfile::sun_3_60().with_jitter(1.5);
    }

    #[test]
    fn mul_dur_saturates() {
        let d = mul_dur(Duration::from_secs(u64::MAX / 2), u64::MAX);
        assert_eq!(d, Duration::from_nanos(u64::MAX));
    }
}
