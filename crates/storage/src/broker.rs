//! Cross-job shared block draws.
//!
//! When several live jobs sample the same base relation, each of them
//! pays its own charged read — that is the per-job *accounting* the
//! deadline math needs — but the physical device only has to fetch
//! any given block once. A [`SharedDrawBroker`] sits in front of the
//! backend for a batch of co-admitted jobs: the first lane to read a
//! block performs the physical fetch and publishes the clean bytes;
//! later lanes that draw the same block are served from the pool.
//!
//! The broker is **charge-transparent per job**: a pool hit charges
//! the subscribing lane's clock exactly like a backend read (same
//! jittered cost from the lane's own RNG), consults the lane's own
//! fault injector, and verifies the same checksum — only the
//! physical `backend.read` is skipped. A lane therefore behaves
//! byte-identically with the broker on or off; what changes is the
//! *device-level* total, surfaced as `blocks_shared` /
//! `charge_saved` counters. Feeding one uniform draw to several
//! independent estimators does not bias any of them (each job's
//! sampler still picks blocks uniformly from its own seeded stream;
//! the broker only dedups the fetch when two streams collide).
//!
//! Eligibility is restricted to registered base-relation files:
//! per-job temporary run files are written and rewritten mid-query,
//! and pooling them could serve stale bytes. Base relations are
//! immutable for the duration of a serving batch, so pooled entries
//! never go stale.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::Block;
use crate::disk::FileId;

/// A per-batch pool deduplicating physical reads of base-relation
/// blocks across concurrent job lanes. See the [module docs](self).
pub struct SharedDrawBroker {
    /// File ids eligible for pooling (base relations only).
    files: HashSet<u64>,
    /// Clean verified blocks published by the first lane to fetch
    /// them, keyed by `(file, block)`.
    pool: Mutex<HashMap<(u64, u64), Arc<Block>>>,
    /// Pool hits served (each one a physical read avoided).
    shared_hits: AtomicU64,
    /// Physical fetches published into the pool.
    published: AtomicU64,
}

impl SharedDrawBroker {
    /// A broker pooling reads of the given base-relation files.
    pub fn new(files: impl IntoIterator<Item = FileId>) -> Arc<Self> {
        Arc::new(SharedDrawBroker {
            files: files.into_iter().map(|f| f.0).collect(),
            pool: Mutex::new(HashMap::new()),
            shared_hits: AtomicU64::new(0),
            published: AtomicU64::new(0),
        })
    }

    /// Whether reads of `file` may be pooled.
    pub fn eligible(&self, file: FileId) -> bool {
        self.files.contains(&file.0)
    }

    /// Looks up a previously published block.
    pub(crate) fn get(&self, file: u64, index: u64) -> Option<Arc<Block>> {
        let hit = self.pool.lock().get(&(file, index)).cloned();
        if hit.is_some() {
            self.shared_hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Publishes a clean, checksum-verified block for other lanes.
    pub(crate) fn publish(&self, file: u64, index: u64, block: Arc<Block>) {
        if self.pool.lock().insert((file, index), block).is_none() {
            self.published.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pool hits served so far (physical reads avoided).
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits.load(Ordering::Relaxed)
    }

    /// Distinct blocks published into the pool.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SharedDrawBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDrawBroker")
            .field("files", &self.files.len())
            .field("published", &self.published())
            .field("shared_hits", &self.shared_hits())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broker_counts_hits_and_publishes_once() {
        let broker = SharedDrawBroker::new([FileId(1)]);
        assert!(broker.eligible(FileId(1)));
        assert!(!broker.eligible(FileId(2)));
        assert!(broker.get(1, 0).is_none());
        // A miss does not count as a hit.
        assert_eq!(broker.shared_hits(), 0);
        let block = Arc::new(Block::zeroed(64));
        broker.publish(1, 0, Arc::clone(&block));
        broker.publish(1, 0, Arc::clone(&block)); // idempotent
        assert_eq!(broker.published(), 1);
        assert!(broker.get(1, 0).is_some());
        assert_eq!(broker.shared_hits(), 1);
    }
}
