//! Block store backends: in-memory and file-backed.
//!
//! [`crate::Disk`] charges the clock and manages the cache; the
//! *backend* owns the bytes. The in-memory backend suits experiments
//! (a paper relation is 2 MB); the file-backed backend keeps every
//! relation and temporary in a real file on disk, so data sets larger
//! than RAM work — what the prototype's "all the input relations and
//! all the intermediate relations are always kept on disks" actually
//! meant.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};

use crate::block::Block;
use crate::error::StorageError;
use crate::Result;

/// Owns block storage for a set of files.
pub(crate) trait BlockBackend: Send {
    /// Allocates a new empty file and returns its id.
    fn create_file(&mut self) -> u64;
    /// Releases a file.
    fn free_file(&mut self, file: u64);
    /// Blocks currently in `file`, or `None` if unknown.
    fn num_blocks(&self, file: u64) -> Option<u64>;
    /// Appends a block, returning its index.
    fn append(&mut self, file: u64, block: &Block) -> Result<u64>;
    /// Reads block `index`.
    fn read(&self, file: u64, index: u64) -> Result<Block>;
    /// Overwrites block `index`.
    fn write(&mut self, file: u64, index: u64, block: &Block) -> Result<()>;
}

/// Blocks held in process memory.
pub(crate) struct MemoryBackend {
    files: HashMap<u64, Vec<Block>>,
    next_file: u64,
}

impl MemoryBackend {
    pub(crate) fn new() -> Self {
        MemoryBackend {
            files: HashMap::new(),
            next_file: 0,
        }
    }
}

impl BlockBackend for MemoryBackend {
    fn create_file(&mut self) -> u64 {
        let id = self.next_file;
        self.next_file += 1;
        self.files.insert(id, Vec::new());
        id
    }

    fn free_file(&mut self, file: u64) {
        self.files.remove(&file);
    }

    fn num_blocks(&self, file: u64) -> Option<u64> {
        self.files.get(&file).map(|b| b.len() as u64)
    }

    fn append(&mut self, file: u64, block: &Block) -> Result<u64> {
        let blocks = self
            .files
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        blocks.push(block.clone());
        Ok(blocks.len() as u64 - 1)
    }

    fn read(&self, file: u64, index: u64) -> Result<Block> {
        let blocks = self
            .files
            .get(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        let len = blocks.len() as u64;
        usize::try_from(index)
            .ok()
            .and_then(|i| blocks.get(i))
            .cloned()
            .ok_or(StorageError::BlockOutOfRange {
                file,
                block: index,
                len,
            })
    }

    fn write(&mut self, file: u64, index: u64, block: &Block) -> Result<()> {
        let blocks = self
            .files
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        let len = blocks.len() as u64;
        let slot = usize::try_from(index)
            .ok()
            .and_then(|i| blocks.get_mut(i))
            .ok_or(StorageError::BlockOutOfRange {
                file,
                block: index,
                len,
            })?;
        *slot = block.clone();
        Ok(())
    }
}

/// Blocks held in one OS file per logical file under a directory.
pub(crate) struct FileBackend {
    dir: PathBuf,
    block_size: usize,
    files: HashMap<u64, (File, u64)>,
    next_file: u64,
}

impl FileBackend {
    /// Creates a backend writing `<dir>/eram-<id>.blk` files. The
    /// directory must exist and be writable.
    pub(crate) fn new(dir: &Path, block_size: usize) -> Result<Self> {
        if !dir.is_dir() {
            return Err(StorageError::io(format!(
                "{} is not a directory",
                dir.display()
            )));
        }
        Ok(FileBackend {
            dir: dir.to_path_buf(),
            block_size,
            files: HashMap::new(),
            next_file: 0,
        })
    }

    fn path(&self, file: u64) -> PathBuf {
        self.dir.join(format!("eram-{file}.blk"))
    }
}

impl BlockBackend for FileBackend {
    fn create_file(&mut self) -> u64 {
        let id = self.next_file;
        self.next_file += 1;
        // Creation is lazy-tolerant: failures surface on first use.
        if let Ok(f) = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.path(id))
        {
            self.files.insert(id, (f, 0));
        }
        id
    }

    fn free_file(&mut self, file: u64) {
        if self.files.remove(&file).is_some() {
            let _ = std::fs::remove_file(self.path(file));
        }
    }

    fn num_blocks(&self, file: u64) -> Option<u64> {
        self.files.get(&file).map(|(_, n)| *n)
    }

    fn append(&mut self, file: u64, block: &Block) -> Result<u64> {
        use std::os::unix::fs::FileExt;
        let block_size = self.block_size;
        let (f, n) = self
            .files
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        f.write_all_at(block.bytes(), *n * block_size as u64)?;
        *n += 1;
        Ok(*n - 1)
    }

    fn read(&self, file: u64, index: u64) -> Result<Block> {
        use std::os::unix::fs::FileExt;
        let (f, n) = self
            .files
            .get(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        if index >= *n {
            return Err(StorageError::BlockOutOfRange {
                file,
                block: index,
                len: *n,
            });
        }
        let mut block = Block::zeroed(self.block_size);
        f.read_exact_at(block.bytes_mut(), index * self.block_size as u64)?;
        Ok(block)
    }

    fn write(&mut self, file: u64, index: u64, block: &Block) -> Result<()> {
        use std::os::unix::fs::FileExt;
        let block_size = self.block_size;
        let (f, n) = self
            .files
            .get_mut(&file)
            .ok_or(StorageError::UnknownFile(file))?;
        if index >= *n {
            return Err(StorageError::BlockOutOfRange {
                file,
                block: index,
                len: *n,
            });
        }
        f.write_all_at(block.bytes(), index * block_size as u64)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8, size: usize) -> Block {
        let mut b = Block::zeroed(size);
        b.bytes_mut()[0] = tag;
        b.bytes_mut()[size - 1] = tag;
        b
    }

    fn temp_dir(label: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("eram-backend-test-{label}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn exercise(backend: &mut dyn BlockBackend, size: usize) {
        let f = backend.create_file();
        assert_eq!(backend.num_blocks(f), Some(0));
        for i in 0..5u8 {
            let idx = backend.append(f, &block(i, size)).unwrap();
            assert_eq!(idx, u64::from(i));
        }
        assert_eq!(backend.num_blocks(f), Some(5));
        for i in 0..5u8 {
            let b = backend.read(f, u64::from(i)).unwrap();
            assert_eq!(b.bytes()[0], i);
            assert_eq!(b.bytes()[size - 1], i);
        }
        backend.write(f, 2, &block(99, size)).unwrap();
        assert_eq!(backend.read(f, 2).unwrap().bytes()[0], 99);
        assert!(matches!(
            backend.read(f, 5),
            Err(StorageError::BlockOutOfRange { .. })
        ));
        assert!(matches!(
            backend.write(f, 5, &block(0, size)),
            Err(StorageError::BlockOutOfRange { .. })
        ));
        backend.free_file(f);
        assert!(backend.num_blocks(f).is_none());
        assert!(matches!(
            backend.read(f, 0),
            Err(StorageError::UnknownFile(_))
        ));
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&mut MemoryBackend::new(), 64);
    }

    #[test]
    fn hostile_index_is_an_error_not_a_panic() {
        let mut b = MemoryBackend::new();
        let f = b.create_file();
        b.append(f, &block(1, 16)).unwrap();
        assert!(matches!(
            b.read(f, u64::MAX),
            Err(StorageError::BlockOutOfRange { block, .. }) if block == u64::MAX
        ));
        assert!(matches!(
            b.write(f, u64::MAX, &block(2, 16)),
            Err(StorageError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn file_backend_contract() {
        let dir = temp_dir("contract");
        exercise(&mut FileBackend::new(&dir, 64).unwrap(), 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_removes_files_on_free() {
        let dir = temp_dir("free");
        let mut b = FileBackend::new(&dir, 32).unwrap();
        let f = b.create_file();
        b.append(f, &block(1, 32)).unwrap();
        let path = dir.join(format!("eram-{f}.blk"));
        assert!(path.exists());
        b.free_file(f);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_rejects_missing_dir() {
        let missing = std::env::temp_dir().join("eram-definitely-missing-xyz");
        let _ = std::fs::remove_dir_all(&missing);
        assert!(FileBackend::new(&missing, 32).is_err());
    }
}
