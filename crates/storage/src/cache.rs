//! A block-granular LRU buffer cache.
//!
//! The paper's prototype reads every block from disk ("all the input
//! relations and all the intermediate relations are always kept on
//! disks"), so the cache is **off by default** and the Section 5
//! experiments run without it. It exists because the full-fulfillment
//! plan re-reads every previous stage's runs at every stage — with a
//! buffer pool those re-reads become cheap, which is a meaningful
//! middle ground between the paper's disk-resident and main-memory
//! designs. Enable it with [`crate::Disk::new_cached`].
//!
//! The implementation is the classic hash-map + recency-queue LRU:
//! O(1) amortized lookups, stale queue entries skipped lazily at
//! eviction time.

use std::collections::{HashMap, VecDeque};

use crate::block::Block;

/// Key of a cached block.
type Key = (u64, u64); // (file, index)

/// A fixed-capacity LRU cache of blocks.
#[derive(Debug)]
pub struct BlockCache {
    capacity: usize,
    entries: HashMap<Key, (Block, u64)>,
    recency: VecDeque<(Key, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Creates a cache holding up to `capacity` blocks.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (use no cache instead).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BlockCache {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            recency: VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum blocks held.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn touch(&mut self, key: Key) {
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, t)) = self.entries.get_mut(&key) {
            *t = tick;
        }
        self.recency.push_back((key, tick));
        // Bound the queue against pathological re-touch storms.
        if self.recency.len() > 8 * self.capacity {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let entries = &self.entries;
        self.recency
            .retain(|(k, t)| entries.get(k).is_some_and(|(_, cur)| cur == t));
    }

    fn evict_if_needed(&mut self) {
        while self.entries.len() > self.capacity {
            match self.recency.pop_front() {
                Some((key, tick)) => {
                    // Only evict if this queue entry is the key's
                    // *latest* touch; otherwise it is stale.
                    if self.entries.get(&key).is_some_and(|(_, cur)| *cur == tick) {
                        self.entries.remove(&key);
                    }
                }
                None => break,
            }
        }
    }

    /// Looks a block up, refreshing its recency.
    pub fn get(&mut self, file: u64, index: u64) -> Option<Block> {
        let key = (file, index);
        if self.entries.contains_key(&key) {
            self.touch(key);
            self.hits += 1;
            Some(self.entries[&key].0.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts (or refreshes) a block, evicting the least recently
    /// used one if over capacity.
    pub fn put(&mut self, file: u64, index: u64, block: Block) {
        let key = (file, index);
        self.tick += 1;
        self.entries.insert(key, (block, self.tick));
        self.recency.push_back((key, self.tick));
        self.evict_if_needed();
    }

    /// Drops every cached block of `file` (file freed/overwritten).
    pub fn invalidate_file(&mut self, file: u64) {
        self.entries.retain(|(f, _), _| *f != file);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8) -> Block {
        let mut b = Block::zeroed(16);
        b.bytes_mut()[0] = tag;
        b
    }

    #[test]
    fn hit_after_put_miss_before() {
        let mut c = BlockCache::new(4);
        assert!(c.get(1, 0).is_none());
        c.put(1, 0, block(7));
        assert_eq!(c.get(1, 0).unwrap().bytes()[0], 7);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = BlockCache::new(2);
        c.put(0, 0, block(0));
        c.put(0, 1, block(1));
        // Touch block 0 so block 1 becomes the LRU.
        assert!(c.get(0, 0).is_some());
        c.put(0, 2, block(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1).is_none(), "LRU entry must be evicted");
        assert!(c.get(0, 0).is_some());
        assert!(c.get(0, 2).is_some());
    }

    #[test]
    fn re_put_refreshes_value_and_recency() {
        let mut c = BlockCache::new(2);
        c.put(0, 0, block(1));
        c.put(0, 1, block(2));
        c.put(0, 0, block(9)); // refresh 0 → 1 is LRU
        c.put(0, 2, block(3));
        assert_eq!(c.get(0, 0).unwrap().bytes()[0], 9);
        assert!(c.get(0, 1).is_none());
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let mut c = BlockCache::new(8);
        c.put(1, 0, block(1));
        c.put(2, 0, block(2));
        c.invalidate_file(1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some());
    }

    #[test]
    fn heavy_retouching_stays_bounded_and_correct() {
        let mut c = BlockCache::new(3);
        for i in 0..3u64 {
            c.put(0, i, block(i as u8));
        }
        for _ in 0..10_000 {
            assert!(c.get(0, 1).is_some());
        }
        assert!(c.recency.len() <= 8 * 3 + 1);
        // All three still resident.
        for i in 0..3u64 {
            assert!(c.get(0, i).is_some(), "block {i} evicted wrongly");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BlockCache::new(0);
    }
}
