//! A block-granular, shard-striped LRU buffer cache.
//!
//! The paper's prototype reads every block from disk ("all the input
//! relations and all the intermediate relations are always kept on
//! disks"), so the cache is **off by default** and the Section 5
//! experiments run without it. It exists because the full-fulfillment
//! plan re-reads every previous stage's runs at every stage — with a
//! buffer pool those re-reads become cheap, which is a meaningful
//! middle ground between the paper's disk-resident and main-memory
//! designs. Enable it with [`crate::Disk::new_cached`].
//!
//! Each shard is the classic hash-map + recency-queue LRU: O(1)
//! amortized lookups, stale queue entries skipped lazily at eviction
//! time. The cache as a whole is **lock-striped**: keys hash to one of
//! up to eight independently locked shards, so concurrent readers on
//! different shards never contend, and cached blocks are handed out as
//! [`Arc<Block>`] clones (a pointer bump) instead of copying the block
//! bytes on every hit. Hit/miss counters are process-wide atomics, so
//! they stay consistent under concurrent access.
//!
//! Small caches (capacity ≤ 8) get exactly one shard and therefore
//! keep the exact global LRU order; larger caches trade global LRU
//! exactness for parallelism (LRU is exact *per shard*). Eviction
//! decisions depend only on the sequence of `get`/`put`/
//! `invalidate_file` calls, so a deterministic caller sees a
//! deterministic hit/miss pattern at any shard count.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::Block;
use crate::disk::FileId;
use crate::tuple::Tuple;

/// Key of a cached block.
type Key = (u64, u64); // (file, index)

/// One independently locked LRU shard.
#[derive(Debug)]
struct Shard {
    capacity: usize,
    entries: HashMap<Key, (Arc<Block>, u64)>,
    recency: VecDeque<(Key, u64)>,
    tick: u64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity,
            entries: HashMap::with_capacity(capacity + 1),
            recency: VecDeque::new(),
            tick: 0,
        }
    }

    /// Appends a recency entry, compacting whenever the queue
    /// outgrows its bound — on *every* push path, so neither re-touch
    /// storms (`get`) nor temp-file churn (`put`) can grow the queue
    /// without limit.
    fn push_recency(&mut self, key: Key, tick: u64) {
        self.recency.push_back((key, tick));
        if self.recency.len() > 8 * self.capacity {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let entries = &self.entries;
        self.recency
            .retain(|(k, t)| entries.get(k).is_some_and(|(_, cur)| cur == t));
    }

    fn evict_if_needed(&mut self) {
        while self.entries.len() > self.capacity {
            match self.recency.pop_front() {
                Some((key, tick)) => {
                    // Only evict if this queue entry is the key's
                    // *latest* touch; otherwise it is stale.
                    if self.entries.get(&key).is_some_and(|(_, cur)| *cur == tick) {
                        self.entries.remove(&key);
                    }
                }
                None => break,
            }
        }
    }

    fn get(&mut self, key: Key) -> Option<Arc<Block>> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((block, t)) = self.entries.get_mut(&key) {
            *t = tick;
            let block = Arc::clone(block);
            self.push_recency(key, tick);
            Some(block)
        } else {
            None
        }
    }

    fn put(&mut self, key: Key, block: Arc<Block>) {
        self.tick += 1;
        let tick = self.tick;
        self.entries.insert(key, (block, tick));
        self.push_recency(key, tick);
        self.evict_if_needed();
    }

    fn invalidate_file(&mut self, file: u64) {
        self.entries.retain(|(f, _), _| *f != file);
        // Drop the dead keys' recency entries too: freed temp files
        // must not leave tombstones that grow the queue across stages.
        self.compact();
    }
}

/// A fixed-capacity LRU cache of blocks, striped over up to eight
/// independently locked shards for concurrent access.
#[derive(Debug)]
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Creates a cache holding up to `capacity` blocks, with a shard
    /// count derived from the capacity: one shard per eight blocks,
    /// clamped to `1..=8`. Caches of eight blocks or fewer get a
    /// single shard and hence exact global LRU behavior.
    ///
    /// # Panics
    /// Panics if `capacity` is zero (use no cache instead).
    pub fn new(capacity: usize) -> Self {
        let shards = (capacity / 8).clamp(1, 8);
        Self::with_shards(capacity, shards)
    }

    /// Creates a cache with an explicit shard count (for stress tests
    /// and tuning). Capacity is split as evenly as possible across
    /// shards.
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero, or if `shards >
    /// capacity` (a shard must hold at least one block).
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        assert!(shards <= capacity, "more shards than capacity");
        let base = capacity / shards;
        let rem = capacity % shards;
        let shards = (0..shards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < rem))))
            .collect();
        BlockCache {
            shards,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Maximum blocks held (summed over shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Blocks currently held.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().entries.len()).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits observed.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses observed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of shards the key space is striped over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: Key) -> &Mutex<Shard> {
        // SplitMix64-style mix of (file, index) so consecutive block
        // indices spread across shards instead of hammering one lock.
        let mut x = key
            .0
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(key.1.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        &self.shards[(x % self.shards.len() as u64) as usize]
    }

    /// Looks a block up, refreshing its recency. Hits hand back a
    /// shared `Arc` — no byte copy.
    pub fn get(&self, file: u64, index: u64) -> Option<Arc<Block>> {
        let key = (file, index);
        let found = self.shard_for(key).lock().get(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts (or refreshes) a block, evicting the least recently
    /// used one in its shard if over capacity.
    pub fn put(&self, file: u64, index: u64, block: Arc<Block>) {
        let key = (file, index);
        self.shard_for(key).lock().put(key, block);
    }

    /// Drops every cached block of `file` (file freed/overwritten),
    /// including the file's recency-queue entries.
    pub fn invalidate_file(&self, file: u64) {
        for shard in &self.shards {
            shard.lock().invalidate_file(file);
        }
    }

    /// Total recency-queue length across shards (bound diagnostics).
    #[cfg(test)]
    fn recency_len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().recency.len()).sum()
    }
}

/// A bounded LRU cache of **decoded, immutable runs**, keyed by the
/// run file's [`FileId`].
///
/// This is a wall-clock-only structure for the full-fulfillment pair
/// grid, which re-reads every previous stage's runs at every stage.
/// The executor still performs every *charged* block fetch a run
/// read implies — the simulated clock, the fault-injection RNG
/// stream, the device counters, and the [`BlockCache`] state are all
/// untouched — and only skips the per-tuple decode when the run is
/// held here ("charge from metadata, serve from memory"). Entries
/// are shared out as `Arc<[Tuple]>` clones and never mutated.
///
/// The bound is **total tuples held**, not entry count, because run
/// sizes vary by orders of magnitude across stages; a capacity of 0
/// disables the cache entirely, and a single run larger than the
/// capacity is served without being cached. The cache is owned by
/// one operator and accessed serially from the charged staging loop,
/// so it needs no interior locking; hit/miss counters are plain
/// fields.
///
/// Each entry is stamped with the file's content version (see
/// [`crate::Disk::file_version`]) at `put` time. A `get` whose
/// caller-supplied version differs from the stamp drops the entry
/// and counts a miss: run files are normally written once, but fault
/// plans can corrupt or rewrite blocks in place, and a decoded run
/// cached before such an event must never keep serving the
/// pre-fault tuples by file id.
#[derive(Debug)]
pub struct RunCache {
    capacity_tuples: usize,
    held_tuples: usize,
    entries: HashMap<FileId, (u64, Arc<[Tuple]>)>,
    /// Least- to most-recently used. Entries are few (one per stage
    /// per side), so the O(n) touch on hit is noise.
    recency: VecDeque<FileId>,
    hits: u64,
    misses: u64,
}

impl RunCache {
    /// A cache bounded to `capacity_tuples` decoded tuples in total
    /// (0 disables caching: every `put` is a no-op).
    pub fn new(capacity_tuples: usize) -> Self {
        RunCache {
            capacity_tuples,
            held_tuples: 0,
            entries: HashMap::new(),
            recency: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured bound, in tuples.
    pub fn capacity_tuples(&self) -> usize {
        self.capacity_tuples
    }

    /// Decoded tuples currently held.
    pub fn held_tuples(&self) -> usize {
        self.held_tuples
    }

    /// Number of cached runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no runs are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that were served from memory.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to a decode.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The cached run for `file`, touching its recency. The caller
    /// passes the file's *current* content version; a stale entry
    /// (stamped with an older version) is dropped and counted as a
    /// miss instead of being served.
    pub fn get(&mut self, file: FileId, version: u64) -> Option<Arc<[Tuple]>> {
        match self.entries.get(&file) {
            Some((stamp, run)) if *stamp == version => {
                self.hits += 1;
                let run = run.clone();
                if let Some(pos) = self.recency.iter().position(|&f| f == file) {
                    self.recency.remove(pos);
                }
                self.recency.push_back(file);
                Some(run)
            }
            Some(_) => {
                self.invalidate(file);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches a run decoded from the file at content `version`,
    /// evicting least-recently-used runs until it fits. A re-`put`
    /// of a cached file at the same version is a no-op (runs are
    /// immutable while their version holds); a newer version
    /// replaces the stale entry; a run larger than the whole
    /// capacity is not cached.
    pub fn put(&mut self, file: FileId, version: u64, run: Arc<[Tuple]>) {
        if self.capacity_tuples == 0 || run.len() > self.capacity_tuples {
            return;
        }
        match self.entries.get(&file) {
            Some((stamp, _)) if *stamp == version => return,
            Some(_) => self.invalidate(file),
            None => {}
        }
        while self.held_tuples + run.len() > self.capacity_tuples {
            let Some(victim) = self.recency.pop_front() else {
                break;
            };
            if let Some((_, evicted)) = self.entries.remove(&victim) {
                self.held_tuples -= evicted.len();
            }
        }
        self.held_tuples += run.len();
        self.recency.push_back(file);
        self.entries.insert(file, (version, run));
    }

    /// Drops the entry for `file`, if any, without touching the
    /// hit/miss counters. Called when a read observes the file in a
    /// degraded or rewritten state: whatever was decoded before no
    /// longer describes the bytes on disk.
    pub fn invalidate(&mut self, file: FileId) {
        if let Some((_, evicted)) = self.entries.remove(&file) {
            self.held_tuples -= evicted.len();
            if let Some(pos) = self.recency.iter().position(|&f| f == file) {
                self.recency.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(tag: u8) -> Arc<Block> {
        let mut b = Block::zeroed(16);
        b.bytes_mut()[0] = tag;
        Arc::new(b)
    }

    #[test]
    fn hit_after_put_miss_before() {
        let c = BlockCache::new(4);
        assert!(c.get(1, 0).is_none());
        c.put(1, 0, block(7));
        assert_eq!(c.get(1, 0).unwrap().bytes()[0], 7);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = BlockCache::new(2);
        assert_eq!(c.shard_count(), 1, "small caches keep exact LRU");
        c.put(0, 0, block(0));
        c.put(0, 1, block(1));
        // Touch block 0 so block 1 becomes the LRU.
        assert!(c.get(0, 0).is_some());
        c.put(0, 2, block(2));
        assert_eq!(c.len(), 2);
        assert!(c.get(0, 1).is_none(), "LRU entry must be evicted");
        assert!(c.get(0, 0).is_some());
        assert!(c.get(0, 2).is_some());
    }

    #[test]
    fn re_put_refreshes_value_and_recency() {
        let c = BlockCache::new(2);
        c.put(0, 0, block(1));
        c.put(0, 1, block(2));
        c.put(0, 0, block(9)); // refresh 0 → 1 is LRU
        c.put(0, 2, block(3));
        assert_eq!(c.get(0, 0).unwrap().bytes()[0], 9);
        assert!(c.get(0, 1).is_none());
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let c = BlockCache::new(8);
        c.put(1, 0, block(1));
        c.put(2, 0, block(2));
        c.invalidate_file(1);
        assert!(c.get(1, 0).is_none());
        assert!(c.get(2, 0).is_some());
    }

    #[test]
    fn heavy_retouching_stays_bounded_and_correct() {
        let c = BlockCache::new(3);
        for i in 0..3u64 {
            c.put(0, i, block(i as u8));
        }
        for _ in 0..10_000 {
            assert!(c.get(0, 1).is_some());
        }
        assert!(c.recency_len() <= 8 * 3 + 1);
        // All three still resident.
        for i in 0..3u64 {
            assert!(c.get(0, i).is_some(), "block {i} evicted wrongly");
        }
    }

    #[test]
    fn put_churn_keeps_recency_bounded() {
        // Temp-file churn: every stage writes and frees short-lived
        // files. Neither the puts nor the invalidations may grow the
        // recency queue without bound.
        let c = BlockCache::new(4);
        for file in 0..5_000u64 {
            c.put(file, 0, block(1));
            c.invalidate_file(file);
        }
        assert!(c.is_empty());
        assert!(c.recency_len() <= 8 * 4 + 1, "queue grew without bound");
    }

    #[test]
    fn invalidate_file_compacts_recency_entries() {
        let c = BlockCache::new(8);
        for i in 0..8u64 {
            c.put(1, i, block(i as u8));
        }
        c.invalidate_file(1);
        assert_eq!(c.len(), 0);
        assert_eq!(
            c.recency_len(),
            0,
            "invalidation must drop the file's recency entries"
        );
    }

    #[test]
    fn sharded_cache_stripes_keys_and_counts_consistently() {
        let c = BlockCache::with_shards(64, 8);
        assert_eq!(c.shard_count(), 8);
        for i in 0..32u64 {
            c.put(0, i, block(i as u8));
        }
        assert!(c.len() <= 64);
        let mut hits = 0;
        for i in 0..64u64 {
            if c.get(0, i).is_some() {
                hits += 1;
            }
        }
        assert_eq!(c.hits(), hits);
        assert_eq!(c.hits() + c.misses(), 64);
    }

    #[test]
    fn shard_count_scales_with_capacity() {
        assert_eq!(BlockCache::new(2).shard_count(), 1);
        assert_eq!(BlockCache::new(8).shard_count(), 1);
        assert_eq!(BlockCache::new(16).shard_count(), 2);
        assert_eq!(BlockCache::new(1_000).shard_count(), 8);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = BlockCache::new(0);
    }

    #[test]
    #[should_panic(expected = "shards")]
    fn more_shards_than_capacity_rejected() {
        let _ = BlockCache::with_shards(4, 5);
    }
}

#[cfg(test)]
mod run_cache_tests {
    use super::*;
    use crate::tuple::Value;

    fn run(n: usize, tag: i64) -> Arc<[Tuple]> {
        (0..n)
            .map(|i| Tuple::new(vec![Value::Int(tag), Value::Int(i as i64)]))
            .collect()
    }

    #[test]
    fn hit_after_put_and_counters() {
        let mut c = RunCache::new(100);
        assert!(c.get(FileId(1), 1).is_none());
        c.put(FileId(1), 1, run(10, 1));
        let got = c.get(FileId(1), 1).expect("cached");
        assert_eq!(got.len(), 10);
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert_eq!(c.held_tuples(), 10);
    }

    #[test]
    fn tuple_bound_evicts_least_recently_used() {
        let mut c = RunCache::new(25);
        c.put(FileId(1), 1, run(10, 1));
        c.put(FileId(2), 1, run(10, 2));
        // Touch 1 so 2 becomes the eviction victim.
        assert!(c.get(FileId(1), 1).is_some());
        c.put(FileId(3), 1, run(10, 3));
        assert!(c.get(FileId(2), 1).is_none(), "LRU run must be evicted");
        assert!(c.get(FileId(1), 1).is_some());
        assert!(c.get(FileId(3), 1).is_some());
        assert_eq!(c.held_tuples(), 20);
        assert!(c.held_tuples() <= c.capacity_tuples());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = RunCache::new(0);
        c.put(FileId(1), 1, run(5, 1));
        c.put(FileId(2), 1, run(0, 2)); // even empty runs stay out
        assert!(c.is_empty());
        assert!(c.get(FileId(1), 1).is_none());
    }

    #[test]
    fn oversize_run_is_served_but_not_cached() {
        let mut c = RunCache::new(8);
        c.put(FileId(1), 1, run(9, 1));
        assert!(c.is_empty());
        // Smaller runs still cache normally afterwards.
        c.put(FileId(2), 1, run(8, 2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn re_put_of_same_version_is_a_noop() {
        let mut c = RunCache::new(100);
        c.put(FileId(1), 3, run(10, 1));
        c.put(FileId(1), 3, run(10, 7));
        assert_eq!(c.held_tuples(), 10, "no double-counting");
        let got = c.get(FileId(1), 3).unwrap();
        assert_eq!(got[0].values()[0], Value::Int(1), "first write wins");
    }

    #[test]
    fn version_mismatch_drops_stale_entry() {
        let mut c = RunCache::new(100);
        c.put(FileId(1), 1, run(10, 1));
        // The file was rewritten on disk: version advanced to 2.
        assert!(
            c.get(FileId(1), 2).is_none(),
            "stale run must not be served"
        );
        assert_eq!(c.misses(), 1);
        assert_eq!(c.held_tuples(), 0, "stale entry dropped, not retained");
        // Re-caching at the new version works and serves the new tuples.
        c.put(FileId(1), 2, run(5, 9));
        let got = c.get(FileId(1), 2).unwrap();
        assert_eq!(got[0].values()[0], Value::Int(9));
    }

    #[test]
    fn put_at_newer_version_replaces_stale_entry() {
        let mut c = RunCache::new(100);
        c.put(FileId(1), 1, run(10, 1));
        c.put(FileId(1), 2, run(4, 8));
        assert_eq!(c.held_tuples(), 4, "stale tuples released");
        let got = c.get(FileId(1), 2).unwrap();
        assert_eq!(got[0].values()[0], Value::Int(8), "newer version wins");
    }

    #[test]
    fn invalidate_drops_entry_without_counting() {
        let mut c = RunCache::new(100);
        c.put(FileId(1), 1, run(10, 1));
        c.put(FileId(2), 1, run(5, 2));
        c.invalidate(FileId(1));
        assert_eq!(c.held_tuples(), 5);
        assert_eq!((c.hits(), c.misses()), (0, 0), "invalidate is not a lookup");
        assert!(c.get(FileId(1), 1).is_none());
        assert!(c.get(FileId(2), 1).is_some());
        // Idempotent on absent keys.
        c.invalidate(FileId(99));
        assert_eq!(c.held_tuples(), 5);
    }
}
