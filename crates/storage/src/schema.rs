//! Fixed-width tuple schemas.
//!
//! ERAM stores relations as files of fixed-size blocks holding
//! fixed-width records ("each artificial relation instance has 10,000
//! tuples, with the tuple size of 200 bytes ... 5 tuples in each disk
//! block"). A [`Schema`] describes the column layout of such a record
//! and computes the *blocking factor* — the number of tuples per
//! block — that the paper's cost formulas use to convert output-tuple
//! counts into output-page counts.

use serde::{Deserialize, Serialize};

use crate::error::StorageError;
use crate::tuple::{Tuple, Value};
use crate::Result;

/// The type of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer (8 bytes on disk).
    Int,
    /// 64-bit float (8 bytes on disk).
    Float,
    /// Boolean (1 byte on disk).
    Bool,
    /// UTF-8 string with a fixed on-disk width (2-byte length prefix
    /// plus `width` bytes of padded payload).
    Str {
        /// Maximum payload length in bytes.
        width: u16,
    },
}

impl ColumnType {
    /// On-disk size of a value of this type, in bytes.
    pub fn encoded_size(self) -> usize {
        match self {
            ColumnType::Int | ColumnType::Float => 8,
            ColumnType::Bool => 1,
            ColumnType::Str { width } => 2 + usize::from(width),
        }
    }

    /// True if `v` is a value of this type.
    pub fn matches(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (ColumnType::Int, Value::Int(_))
                | (ColumnType::Float, Value::Float(_))
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Str { .. }, Value::Str(_))
        )
    }
}

/// One named column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// A fixed-width record layout: an ordered list of columns plus
/// optional trailing padding to reach a declared record size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
    record_size: usize,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs with no padding.
    ///
    /// # Panics
    /// Panics if column names are not unique.
    pub fn new<S: Into<String>>(columns: Vec<(S, ColumnType)>) -> Self {
        let columns: Vec<Column> = columns
            .into_iter()
            .map(|(name, ty)| Column {
                name: name.into(),
                ty,
            })
            .collect();
        for i in 0..columns.len() {
            for j in (i + 1)..columns.len() {
                assert!(
                    columns[i].name != columns[j].name,
                    "duplicate column name {:?}",
                    columns[i].name
                );
            }
        }
        let natural: usize = columns.iter().map(|c| c.ty.encoded_size()).sum();
        Schema {
            columns,
            record_size: natural,
        }
    }

    /// Pads records to `record_size` bytes, reproducing e.g. the
    /// paper's 200-byte tuples regardless of logical column content.
    ///
    /// # Panics
    /// Panics if `record_size` is smaller than the natural encoded
    /// size of the columns.
    pub fn padded_to(mut self, record_size: usize) -> Self {
        let natural: usize = self.columns.iter().map(|c| c.ty.encoded_size()).sum();
        assert!(
            record_size >= natural,
            "record size {record_size} smaller than natural size {natural}"
        );
        self.record_size = record_size;
        self
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns (the relation's degree).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// On-disk record size in bytes (including padding).
    pub fn record_size(&self) -> usize {
        self.record_size
    }

    /// Index of the column named `name`, if any.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Tuples per block of `block_size` bytes — the paper's
    /// *blockingfactor*.
    ///
    /// # Panics
    /// Panics if a record does not fit in one block.
    pub fn blocking_factor(&self, block_size: usize) -> usize {
        let bf = block_size / self.record_size;
        assert!(
            bf > 0,
            "record of {} bytes does not fit in a {block_size}-byte block",
            self.record_size
        );
        bf
    }

    /// Two schemas are *compatible* (for union/difference/intersect)
    /// when their column types match pairwise; names may differ.
    pub fn compatible_with(&self, other: &Schema) -> bool {
        self.arity() == other.arity()
            && self
                .columns
                .iter()
                .zip(other.columns.iter())
                .all(|(a, b)| a.ty == b.ty)
    }

    /// Schema of a projection of this schema onto `indices`.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn project(&self, indices: &[usize]) -> Schema {
        let columns: Vec<(String, ColumnType)> = indices
            .iter()
            .map(|&i| (self.columns[i].name.clone(), self.columns[i].ty))
            .collect();
        Schema::new(columns)
    }

    /// Schema of the concatenation of this schema and `other`
    /// (join output). Name clashes are disambiguated with a suffix.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns: Vec<(String, ColumnType)> = self
            .columns
            .iter()
            .map(|c| (c.name.clone(), c.ty))
            .collect();
        for c in &other.columns {
            // Disambiguate clashes with increasing suffixes so that
            // chained joins (x, x_r, x_r2, …) stay unique.
            let mut name = c.name.clone();
            let mut suffix = 1usize;
            while columns.iter().any(|(n, _)| *n == name) {
                suffix += 1;
                name = if suffix == 2 {
                    format!("{}_r", c.name)
                } else {
                    format!("{}_r{}", c.name, suffix - 1)
                };
            }
            columns.push((name, c.ty));
        }
        Schema::new(columns)
    }

    /// Validates that `t` conforms to this schema.
    pub fn check_tuple(&self, t: &Tuple) -> Result<()> {
        if t.arity() != self.arity() {
            return Err(StorageError::SchemaMismatch(format!(
                "tuple arity {} vs schema arity {}",
                t.arity(),
                self.arity()
            )));
        }
        for (col, v) in self.columns.iter().zip(t.values()) {
            if !col.ty.matches(v) {
                return Err(StorageError::SchemaMismatch(format!(
                    "column {:?} expects {:?}, got {:?}",
                    col.name, col.ty, v
                )));
            }
            if let (ColumnType::Str { width }, Value::Str(s)) = (col.ty, v) {
                if s.len() > usize::from(width) {
                    return Err(StorageError::StringTooLong {
                        width: usize::from(width),
                        len: s.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Encodes `t` into its fixed-width record form.
    pub fn encode(&self, t: &Tuple) -> Result<Vec<u8>> {
        let mut out = vec![0u8; self.record_size];
        self.encode_into(t, &mut out)?;
        Ok(out)
    }

    /// Encodes `t` directly into a caller-provided record slice of
    /// exactly [`Schema::record_size`] bytes — the allocation-free
    /// form of [`Schema::encode`] used when packing whole blocks
    /// (padding bytes are zeroed, so the output is byte-identical).
    pub fn encode_into(&self, t: &Tuple, out: &mut [u8]) -> Result<()> {
        self.check_tuple(t)?;
        if out.len() != self.record_size {
            return Err(StorageError::SchemaMismatch(format!(
                "record buffer of {} bytes, schema expects {}",
                out.len(),
                self.record_size
            )));
        }
        let mut off = 0usize;
        for (col, v) in self.columns.iter().zip(t.values()) {
            match (col.ty, v) {
                (ColumnType::Int, Value::Int(x)) => {
                    out[off..off + 8].copy_from_slice(&x.to_le_bytes());
                    off += 8;
                }
                (ColumnType::Float, Value::Float(x)) => {
                    out[off..off + 8].copy_from_slice(&x.to_le_bytes());
                    off += 8;
                }
                (ColumnType::Bool, Value::Bool(b)) => {
                    out[off] = u8::from(*b);
                    off += 1;
                }
                (ColumnType::Str { width }, Value::Str(s)) => {
                    let len = u16::try_from(s.len()).expect("checked above");
                    out[off..off + 2].copy_from_slice(&len.to_le_bytes());
                    off += 2;
                    out[off..off + s.len()].copy_from_slice(s.as_bytes());
                    out[off + s.len()..off + usize::from(width)].fill(0);
                    off += usize::from(width);
                }
                _ => unreachable!("check_tuple verified types"),
            }
        }
        out[off..].fill(0);
        Ok(())
    }

    /// Decodes a fixed-width record produced by [`Schema::encode`].
    pub fn decode(&self, bytes: &[u8]) -> Result<Tuple> {
        if bytes.len() < self.record_size {
            return Err(StorageError::SchemaMismatch(format!(
                "record of {} bytes, schema expects {}",
                bytes.len(),
                self.record_size
            )));
        }
        let mut values = Vec::with_capacity(self.arity());
        let mut off = 0usize;
        for col in &self.columns {
            match col.ty {
                ColumnType::Int => {
                    let raw: [u8; 8] = bytes[off..off + 8].try_into().expect("sized slice");
                    values.push(Value::Int(i64::from_le_bytes(raw)));
                    off += 8;
                }
                ColumnType::Float => {
                    let raw: [u8; 8] = bytes[off..off + 8].try_into().expect("sized slice");
                    values.push(Value::Float(f64::from_le_bytes(raw)));
                    off += 8;
                }
                ColumnType::Bool => {
                    values.push(Value::Bool(bytes[off] != 0));
                    off += 1;
                }
                ColumnType::Str { width } => {
                    let raw: [u8; 2] = bytes[off..off + 2].try_into().expect("sized slice");
                    let len = usize::from(u16::from_le_bytes(raw));
                    off += 2;
                    if len > usize::from(width) {
                        return Err(StorageError::SchemaMismatch(format!(
                            "string length {len} exceeds column width {width}"
                        )));
                    }
                    let s = std::str::from_utf8(&bytes[off..off + len])
                        .map_err(|e| StorageError::SchemaMismatch(e.to_string()))?;
                    values.push(Value::Str(s.to_owned()));
                    off += usize::from(width);
                }
            }
        }
        Ok(Tuple::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("score", ColumnType::Float),
            ("flag", ColumnType::Bool),
            ("name", ColumnType::Str { width: 12 }),
        ])
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample_schema();
        let t = Tuple::new(vec![
            Value::Int(-42),
            Value::Float(3.25),
            Value::Bool(true),
            Value::Str("hello".into()),
        ]);
        let bytes = s.encode(&t).unwrap();
        assert_eq!(bytes.len(), s.record_size());
        assert_eq!(s.decode(&bytes).unwrap(), t);
    }

    #[test]
    fn padded_schema_reproduces_paper_blocking_factor() {
        let s = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
        assert_eq!(s.record_size(), 200);
        assert_eq!(s.blocking_factor(1024), 5);
    }

    #[test]
    fn padded_round_trip_ignores_padding() {
        let s = Schema::new(vec![("a", ColumnType::Int)]).padded_to(64);
        let t = Tuple::new(vec![Value::Int(7)]);
        let bytes = s.encode(&t).unwrap();
        assert_eq!(bytes.len(), 64);
        assert_eq!(s.decode(&bytes).unwrap(), t);
    }

    #[test]
    fn encode_into_is_byte_identical_to_encode() {
        let s = sample_schema().padded_to(64);
        let t = Tuple::new(vec![
            Value::Int(-42),
            Value::Float(3.25),
            Value::Bool(true),
            Value::Str("hello".into()),
        ]);
        let alloc = s.encode(&t).unwrap();
        // A dirty buffer: every non-payload byte must be re-zeroed.
        let mut buf = vec![0xAAu8; s.record_size()];
        s.encode_into(&t, &mut buf).unwrap();
        assert_eq!(buf, alloc);
        // Wrong-size buffers are rejected, not silently truncated.
        let mut short = vec![0u8; s.record_size() - 1];
        assert!(s.encode_into(&t, &mut short).is_err());
    }

    #[test]
    fn encode_rejects_wrong_arity_and_type() {
        let s = sample_schema();
        assert!(s.encode(&Tuple::new(vec![Value::Int(1)])).is_err());
        let t = Tuple::new(vec![
            Value::Float(1.0),
            Value::Float(2.0),
            Value::Bool(false),
            Value::Str("x".into()),
        ]);
        assert!(s.encode(&t).is_err());
    }

    #[test]
    fn encode_rejects_overlong_string() {
        let s = Schema::new(vec![("name", ColumnType::Str { width: 4 })]);
        let t = Tuple::new(vec![Value::Str("too long".into())]);
        assert!(matches!(
            s.encode(&t),
            Err(StorageError::StringTooLong { width: 4, len: 8 })
        ));
    }

    #[test]
    fn compatibility_is_by_types_not_names() {
        let a = Schema::new(vec![("x", ColumnType::Int), ("y", ColumnType::Bool)]);
        let b = Schema::new(vec![("p", ColumnType::Int), ("q", ColumnType::Bool)]);
        let c = Schema::new(vec![("p", ColumnType::Int)]);
        assert!(a.compatible_with(&b));
        assert!(!a.compatible_with(&c));
    }

    #[test]
    fn project_and_concat_build_expected_layouts() {
        let s = sample_schema();
        let p = s.project(&[3, 0]);
        assert_eq!(p.columns()[0].name, "name");
        assert_eq!(p.columns()[1].name, "id");

        let j = s.concat(&s);
        assert_eq!(j.arity(), 8);
        assert_eq!(j.columns()[4].name, "id_r");

        // Chained self-joins must keep disambiguating.
        let jj = j.concat(&s);
        assert_eq!(jj.arity(), 12);
        assert_eq!(jj.columns()[8].name, "id_r2");
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_names_rejected() {
        let _ = Schema::new(vec![("a", ColumnType::Int), ("a", ColumnType::Int)]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn blocking_factor_requires_fit() {
        let s = Schema::new(vec![("a", ColumnType::Int)]).padded_to(2048);
        let _ = s.blocking_factor(1024);
    }

    #[test]
    fn column_index_lookup() {
        let s = sample_schema();
        assert_eq!(s.column_index("score"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }
}
