//! Pluggable relation ingestion.
//!
//! Base relations were historically loaded from CSV only
//! ([`crate::csv::read_csv`]). This module generalizes loading into a
//! [`TupleSource`] trait — parse a byte stream into schema-conforming
//! [`Tuple`]s — with three built-in sources:
//!
//! * [`CsvSource`] — the existing CSV reader, unchanged;
//! * [`JsonLinesSource`] — one JSON value per line, either an object
//!   keyed by column name or an array in column order. The parser is
//!   hand-rolled (the workspace must build against the offline serde
//!   stand-ins, which cannot parse) and covers exactly the JSON
//!   subset relation dumps need: objects, arrays, strings with
//!   escapes, numbers, booleans;
//! * [`ParquetSource`] — a documented *subset* of the Parquet idea:
//!   column-major chunks of PLAIN-encoded values in one row group,
//!   framed by the `PAR1` magic. See [`ParquetSource`] for the exact
//!   byte layout; [`write_parquet_subset`] produces it, so fixtures
//!   round-trip without any external dependency.
//!
//! Whatever the source, the produced tuples are validated against
//! the target [`Schema`] and then fed to the same
//! [`crate::HeapFile`] loader, so the on-disk block image — and
//! therefore every downstream sampling decision — is identical
//! across formats holding the same records.

use std::io::BufRead;

use crate::csv::read_csv;
use crate::error::StorageError;
use crate::schema::{ColumnType, Schema};
use crate::tuple::{Tuple, Value};
use crate::Result;

/// A named ingestion format selectable e.g. from the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestFormat {
    /// Comma-separated values; `has_header` skips the first record.
    Csv {
        /// True when the first non-empty line is a header to skip.
        has_header: bool,
    },
    /// One JSON object or array per line.
    JsonLines,
    /// The `PAR1`-framed PLAIN columnar subset.
    Parquet,
}

impl IngestFormat {
    /// Parses a format name: `csv`, `jsonl` (or `json`), `parquet`.
    /// CSV defaults to having a header row, matching the CLI loader.
    pub fn parse(text: &str) -> Result<Self> {
        match text.trim().to_ascii_lowercase().as_str() {
            "csv" => Ok(IngestFormat::Csv { has_header: true }),
            "jsonl" | "json" => Ok(IngestFormat::JsonLines),
            "parquet" => Ok(IngestFormat::Parquet),
            other => Err(StorageError::io(format!(
                "unknown ingest format {other:?} (expected csv, jsonl, or parquet)"
            ))),
        }
    }

    /// The source implementing this format.
    pub fn source(self) -> Box<dyn TupleSource> {
        match self {
            IngestFormat::Csv { has_header } => Box::new(CsvSource { has_header }),
            IngestFormat::JsonLines => Box::new(JsonLinesSource),
            IngestFormat::Parquet => Box::new(ParquetSource),
        }
    }
}

/// Parses an input stream into tuples conforming to a schema.
///
/// Implementations must validate every produced tuple against the
/// schema (arity, types, string widths) and fail on the first
/// malformed record — partial loads would silently skew every
/// selectivity estimate built on the relation.
pub trait TupleSource {
    /// A short name for error messages and logs.
    fn format_name(&self) -> &'static str;

    /// Reads every record from `reader`.
    fn read(&self, reader: &mut dyn BufRead, schema: &Schema) -> Result<Vec<Tuple>>;
}

/// Reads `reader` with the source for `format` — the one-call form.
pub fn read_tuples(
    format: IngestFormat,
    reader: &mut dyn BufRead,
    schema: &Schema,
) -> Result<Vec<Tuple>> {
    format.source().read(reader, schema)
}

/// The existing CSV reader behind the [`TupleSource`] interface.
#[derive(Debug, Clone, Copy)]
pub struct CsvSource {
    /// True when the first non-empty line is a header to skip.
    pub has_header: bool,
}

impl TupleSource for CsvSource {
    fn format_name(&self) -> &'static str {
        "csv"
    }

    fn read(&self, reader: &mut dyn BufRead, schema: &Schema) -> Result<Vec<Tuple>> {
        read_csv(reader, schema, self.has_header)
    }
}

/// One JSON value per line: `{"col": value, ...}` (any key order,
/// keys matched against schema column names) or `[v1, v2, ...]`
/// (column order). Blank lines are skipped.
#[derive(Debug, Clone, Copy)]
pub struct JsonLinesSource;

impl TupleSource for JsonLinesSource {
    fn format_name(&self) -> &'static str {
        "jsonl"
    }

    fn read(&self, reader: &mut dyn BufRead, schema: &Schema) -> Result<Vec<Tuple>> {
        let mut tuples = Vec::new();
        for (i, line) in reader.lines().enumerate() {
            let line_no = i + 1;
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let json = parse_json_line(&line, line_no)?;
            let tuple = json_to_tuple(json, schema, line_no)?;
            schema.check_tuple(&tuple)?;
            tuples.push(tuple);
        }
        Ok(tuples)
    }
}

/// A parsed JSON value. Numbers keep their raw lexeme so `1` can
/// load into an `Int` column while `1.0` is rejected there — the
/// same int/float strictness the CSV parser has.
enum Json {
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

fn jerr(line_no: usize, msg: impl std::fmt::Display) -> StorageError {
    StorageError::io(format!("JSONL line {line_no}: {msg}"))
}

/// Parses one line holding exactly one JSON value (plus trailing
/// whitespace). Hand-rolled recursive descent over the subset needed
/// for relation records; `null` is rejected up front because no
/// column type can hold it.
fn parse_json_line(line: &str, line_no: usize) -> Result<Json> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let value = parse_json_value(bytes, &mut pos, line_no)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(jerr(line_no, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_json_value(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<Json> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(jerr(line_no, "unexpected end of line")),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let Json::Str(key) = parse_json_value(bytes, pos, line_no)? else {
                    return Err(jerr(line_no, "object key must be a string"));
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(jerr(line_no, format!("expected ':' after key {key:?}")));
                }
                *pos += 1;
                let value = parse_json_value(bytes, pos, line_no)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(jerr(line_no, "expected ',' or '}' in object")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_json_value(bytes, pos, line_no)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(jerr(line_no, "expected ',' or ']' in array")),
                }
            }
        }
        Some(b'"') => parse_json_string(bytes, pos, line_no).map(Json::Str),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            Err(jerr(line_no, "null is not loadable into any column type"))
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let lexeme = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
            // Validate now so garbage like "1.2.3" fails here, with
            // a line number, not later during column conversion.
            if lexeme.parse::<f64>().is_err() {
                return Err(jerr(line_no, format!("malformed number {lexeme:?}")));
            }
            Ok(Json::Num(lexeme.to_owned()))
        }
        Some(c) => Err(jerr(
            line_no,
            format!("unexpected character {:?}", *c as char),
        )),
    }
}

fn parse_json_string(bytes: &[u8], pos: &mut usize, line_no: usize) -> Result<String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(jerr(line_no, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| jerr(line_no, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| jerr(line_no, "malformed \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| jerr(line_no, "malformed \\u escape"))?;
                        // Surrogate pairs are out of subset scope;
                        // reject rather than mis-decode.
                        let c = char::from_u32(code)
                            .ok_or_else(|| jerr(line_no, "\\u escape is not a scalar value"))?;
                        out.push(c);
                        *pos += 4;
                    }
                    _ => return Err(jerr(line_no, "unknown escape in string")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 scalar from the original str.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| jerr(line_no, "invalid UTF-8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn json_scalar_to_value(json: &Json, ty: ColumnType, line_no: usize, what: &str) -> Result<Value> {
    match (ty, json) {
        (ColumnType::Int, Json::Num(raw)) => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| jerr(line_no, format!("{what}: {raw:?} is not an integer"))),
        (ColumnType::Float, Json::Num(raw)) => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| jerr(line_no, format!("{what}: {raw:?} is not a float"))),
        (ColumnType::Bool, Json::Bool(b)) => Ok(Value::Bool(*b)),
        (ColumnType::Str { .. }, Json::Str(s)) => Ok(Value::Str(s.clone())),
        (ty, _) => Err(jerr(line_no, format!("{what}: wrong JSON type for {ty:?}"))),
    }
}

fn json_to_tuple(json: Json, schema: &Schema, line_no: usize) -> Result<Tuple> {
    match json {
        Json::Arr(items) => {
            if items.len() != schema.arity() {
                return Err(jerr(
                    line_no,
                    format!("{} values, schema expects {}", items.len(), schema.arity()),
                ));
            }
            let values: Result<Vec<Value>> = items
                .iter()
                .zip(schema.columns())
                .map(|(item, col)| {
                    json_scalar_to_value(item, col.ty, line_no, &format!("column {:?}", col.name))
                })
                .collect();
            Ok(Tuple::new(values?))
        }
        Json::Obj(fields) => {
            for (key, _) in &fields {
                if schema.column_index(key).is_none() {
                    return Err(jerr(line_no, format!("unknown column {key:?}")));
                }
            }
            let values: Result<Vec<Value>> = schema
                .columns()
                .iter()
                .map(|col| {
                    let mut found = fields.iter().filter(|(key, _)| *key == col.name);
                    let (_, item) = found
                        .next()
                        .ok_or_else(|| jerr(line_no, format!("missing column {:?}", col.name)))?;
                    if found.next().is_some() {
                        return Err(jerr(line_no, format!("duplicate column {:?}", col.name)));
                    }
                    json_scalar_to_value(item, col.ty, line_no, &format!("column {:?}", col.name))
                })
                .collect();
            Ok(Tuple::new(values?))
        }
        _ => Err(jerr(line_no, "record must be a JSON object or array")),
    }
}

/// Magic framing bytes shared with real Parquet files.
const PARQUET_MAGIC: &[u8; 4] = b"PAR1";
/// Version tag of the subset container.
const PARQUET_SUBSET_VERSION: u32 = 1;

/// A minimal, self-describing subset of the Parquet layout:
/// column-major, PLAIN-encoded, one row group, `PAR1`-framed. It is
/// **not** interchangeable with general Parquet files (no Thrift
/// footer metadata, no compression, no pages); it exists so columnar
/// fixtures can be ingested without adding a dependency, while
/// keeping Parquet's two load-bearing ideas — column-major chunks
/// and PLAIN value encodings.
///
/// Byte layout, all integers little-endian:
///
/// ```text
/// "PAR1"                                    magic
/// u32  version (currently 1)
/// u32  n_columns
/// u64  n_rows
/// per column, in schema order:
///   u8  type tag: 0=int64, 1=double, 2=boolean, 3=byte_array
///   column chunk, PLAIN encoding:
///     int64:      n_rows × 8-byte values
///     double:     n_rows × 8-byte values
///     boolean:    ceil(n_rows / 8) bytes, bit-packed LSB-first
///     byte_array: per value, u32 length + UTF-8 bytes
/// "PAR1"                                    trailing magic
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParquetSource;

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Int => 0,
        ColumnType::Float => 1,
        ColumnType::Bool => 2,
        ColumnType::Str { .. } => 3,
    }
}

fn perr(msg: impl std::fmt::Display) -> StorageError {
    StorageError::io(format!("parquet subset: {msg}"))
}

struct ByteCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| perr("truncated file"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

impl TupleSource for ParquetSource {
    fn format_name(&self) -> &'static str {
        "parquet"
    }

    fn read(&self, reader: &mut dyn BufRead, schema: &Schema) -> Result<Vec<Tuple>> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        if bytes.len() < 8
            || &bytes[..4] != PARQUET_MAGIC
            || &bytes[bytes.len() - 4..] != PARQUET_MAGIC
        {
            return Err(perr("missing PAR1 framing"));
        }
        let mut cur = ByteCursor {
            bytes: &bytes[..bytes.len() - 4],
            pos: 4,
        };
        let version = cur.u32()?;
        if version != PARQUET_SUBSET_VERSION {
            return Err(perr(format!("unsupported version {version}")));
        }
        let n_columns = cur.u32()? as usize;
        if n_columns != schema.arity() {
            return Err(perr(format!(
                "{n_columns} columns, schema expects {}",
                schema.arity()
            )));
        }
        let n_rows = usize::try_from(cur.u64()?).map_err(|_| perr("row count overflows"))?;
        // Decode column-major, then transpose into tuples.
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(n_columns);
        for col in schema.columns() {
            let tag = cur.take(1)?[0];
            if tag != type_tag(col.ty) {
                return Err(perr(format!(
                    "column {:?}: type tag {tag} does not match schema type {:?}",
                    col.name, col.ty
                )));
            }
            let mut values = Vec::with_capacity(n_rows);
            match col.ty {
                ColumnType::Int => {
                    for _ in 0..n_rows {
                        let raw: [u8; 8] = cur.take(8)?.try_into().expect("8");
                        values.push(Value::Int(i64::from_le_bytes(raw)));
                    }
                }
                ColumnType::Float => {
                    for _ in 0..n_rows {
                        let raw: [u8; 8] = cur.take(8)?.try_into().expect("8");
                        values.push(Value::Float(f64::from_le_bytes(raw)));
                    }
                }
                ColumnType::Bool => {
                    let packed = cur.take(n_rows.div_ceil(8))?;
                    for row in 0..n_rows {
                        values.push(Value::Bool(packed[row / 8] >> (row % 8) & 1 != 0));
                    }
                }
                ColumnType::Str { .. } => {
                    for _ in 0..n_rows {
                        let raw: [u8; 4] = cur.take(4)?.try_into().expect("4");
                        let len = u32::from_le_bytes(raw) as usize;
                        let s = std::str::from_utf8(cur.take(len)?)
                            .map_err(|e| perr(format!("column {:?}: {e}", col.name)))?;
                        values.push(Value::Str(s.to_owned()));
                    }
                }
            }
            columns.push(values);
        }
        if cur.pos != cur.bytes.len() {
            return Err(perr("trailing bytes before footer magic"));
        }
        let mut tuples = Vec::with_capacity(n_rows);
        for row in 0..n_rows {
            let tuple = Tuple::new(columns.iter().map(|col| col[row].clone()).collect());
            schema.check_tuple(&tuple)?;
            tuples.push(tuple);
        }
        Ok(tuples)
    }
}

/// Writes `tuples` in the [`ParquetSource`] subset layout — the
/// fixture writer paired with the reader, used by tests and by tools
/// converting CSV dumps.
pub fn write_parquet_subset(schema: &Schema, tuples: &[Tuple]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(PARQUET_MAGIC);
    out.extend_from_slice(&PARQUET_SUBSET_VERSION.to_le_bytes());
    out.extend_from_slice(
        &u32::try_from(schema.arity())
            .expect("arity fits u32")
            .to_le_bytes(),
    );
    out.extend_from_slice(&(tuples.len() as u64).to_le_bytes());
    for t in tuples {
        schema.check_tuple(t)?;
    }
    for (i, col) in schema.columns().iter().enumerate() {
        out.push(type_tag(col.ty));
        match col.ty {
            ColumnType::Int => {
                for t in tuples {
                    let x = t.value(i).as_int().expect("checked");
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnType::Float => {
                for t in tuples {
                    let x = t.value(i).as_float().expect("checked");
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnType::Bool => {
                let mut packed = vec![0u8; tuples.len().div_ceil(8)];
                for (row, t) in tuples.iter().enumerate() {
                    if t.value(i).as_bool().expect("checked") {
                        packed[row / 8] |= 1 << (row % 8);
                    }
                }
                out.extend_from_slice(&packed);
            }
            ColumnType::Str { .. } => {
                for t in tuples {
                    let s = t.value(i).as_str().expect("checked");
                    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                    out.extend_from_slice(s.as_bytes());
                }
            }
        }
    }
    out.extend_from_slice(PARQUET_MAGIC);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("price", ColumnType::Float),
            ("ok", ColumnType::Bool),
            ("name", ColumnType::Str { width: 8 }),
        ])
    }

    fn rows(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64 - 2),
                    Value::Float(i as f64 * 0.25),
                    Value::Bool(i % 3 == 0),
                    Value::Str(format!("r{i}")),
                ])
            })
            .collect()
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(
            IngestFormat::parse("csv").unwrap(),
            IngestFormat::Csv { has_header: true }
        );
        assert_eq!(
            IngestFormat::parse(" JSONL ").unwrap(),
            IngestFormat::JsonLines
        );
        assert_eq!(
            IngestFormat::parse("parquet").unwrap(),
            IngestFormat::Parquet
        );
        assert!(IngestFormat::parse("orc").is_err());
    }

    #[test]
    fn csv_source_matches_read_csv() {
        let csv = "id,price,ok,name\n1,2.5,true,ada\n2,3.0,no,bob\n";
        let via_source = read_tuples(
            IngestFormat::Csv { has_header: true },
            &mut Cursor::new(csv),
            &schema(),
        )
        .unwrap();
        let direct = read_csv(Cursor::new(csv), &schema(), true).unwrap();
        assert_eq!(via_source, direct);
    }

    #[test]
    fn jsonl_objects_and_arrays_load_identically() {
        let objects = concat!(
            "{\"id\": 1, \"price\": 2.5, \"ok\": true, \"name\": \"ada\"}\n",
            "\n",
            "{\"name\": \"bob\", \"ok\": false, \"id\": 2, \"price\": 3.0}\n",
        );
        let arrays = "[1, 2.5, true, \"ada\"]\n[2, 3.0, false, \"bob\"]\n";
        let from_objects = read_tuples(
            IngestFormat::JsonLines,
            &mut Cursor::new(objects),
            &schema(),
        )
        .unwrap();
        let from_arrays =
            read_tuples(IngestFormat::JsonLines, &mut Cursor::new(arrays), &schema()).unwrap();
        assert_eq!(from_objects, from_arrays);
        assert_eq!(from_objects.len(), 2);
        assert_eq!(from_objects[0].value(3), &Value::Str("ada".into()));
        assert_eq!(from_objects[1].value(1), &Value::Float(3.0));
    }

    #[test]
    fn jsonl_handles_escapes_negative_numbers_and_exponents() {
        let s = Schema::new(vec![
            ("f", ColumnType::Float),
            ("s", ColumnType::Str { width: 16 }),
        ]);
        let line = "[-2.5e-1, \"a\\\"b\\\\c\\n\\u0041\"]\n";
        let rows = read_tuples(IngestFormat::JsonLines, &mut Cursor::new(line), &s).unwrap();
        assert_eq!(rows[0].value(0), &Value::Float(-0.25));
        assert_eq!(rows[0].value(1), &Value::Str("a\"b\\c\nA".into()));
    }

    #[test]
    fn jsonl_errors_carry_line_numbers() {
        let cases = [
            "{\"id\": 1, \"price\": 2.5, \"ok\": true}\n", // missing column
            "{\"id\": 1, \"price\": 2.5, \"ok\": true, \"name\": \"a\", \"x\": 1}\n", // unknown
            "[1, 2.5, true, \"ada\", 9]\n",                // arity
            "[1.5, 2.5, true, \"ada\"]\n",                 // float into int
            "[1, 2.5, true, null]\n",                      // null
            "[1, 2.5, true, \"ada\"] trailing\n",          // trailing garbage
            "[1, 2.5, true, \"unterminated\n",             // bad string
            "42\n",                                        // not a record
        ];
        for bad in cases {
            let input = format!("[1, 1.0, true, \"ok\"]\n{bad}");
            let err = read_tuples(
                IngestFormat::JsonLines,
                &mut Cursor::new(input.as_str()),
                &schema(),
            )
            .unwrap_err();
            assert!(
                err.to_string().contains("line 2"),
                "error for {bad:?} lacks line number: {err}"
            );
        }
    }

    #[test]
    fn parquet_subset_round_trips() {
        for n in [0usize, 1, 7, 8, 9, 100] {
            let tuples = rows(n);
            let bytes = write_parquet_subset(&schema(), &tuples).unwrap();
            assert_eq!(&bytes[..4], b"PAR1");
            assert_eq!(&bytes[bytes.len() - 4..], b"PAR1");
            let decoded = read_tuples(
                IngestFormat::Parquet,
                &mut Cursor::new(bytes.as_slice()),
                &schema(),
            )
            .unwrap();
            assert_eq!(decoded, tuples, "round trip failed for n={n}");
        }
    }

    #[test]
    fn parquet_subset_rejects_malformed_files() {
        let tuples = rows(5);
        let good = write_parquet_subset(&schema(), &tuples).unwrap();

        let read =
            |bytes: &[u8]| read_tuples(IngestFormat::Parquet, &mut Cursor::new(bytes), &schema());
        assert!(read(b"not a parquet file").is_err());
        // Truncation anywhere in the body.
        assert!(read(&good[..good.len() - 8]).is_err());
        // Wrong framing.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(read(&bad).is_err());
        // Schema mismatch: drop a column from the reader's schema.
        let narrow = Schema::new(vec![("id", ColumnType::Int)]);
        assert!(read_tuples(
            IngestFormat::Parquet,
            &mut Cursor::new(good.as_slice()),
            &narrow
        )
        .is_err());
        // Type mismatch against the recorded tags.
        let swapped = Schema::new(vec![
            ("id", ColumnType::Float),
            ("price", ColumnType::Int),
            ("ok", ColumnType::Bool),
            ("name", ColumnType::Str { width: 8 }),
        ]);
        assert!(read_tuples(
            IngestFormat::Parquet,
            &mut Cursor::new(good.as_slice()),
            &swapped
        )
        .is_err());
    }

    #[test]
    fn all_formats_produce_identical_tuples() {
        let tuples = rows(9);
        let s = schema();
        // CSV rendering of the same records.
        let mut csv = String::from("id,price,ok,name\n");
        for t in &tuples {
            csv.push_str(&format!(
                "{},{},{},{}\n",
                t.value(0).as_int().unwrap(),
                t.value(1).as_float().unwrap(),
                t.value(2).as_bool().unwrap(),
                t.value(3).as_str().unwrap(),
            ));
        }
        let mut jsonl = String::new();
        for t in &tuples {
            jsonl.push_str(&format!(
                "{{\"id\": {}, \"price\": {}, \"ok\": {}, \"name\": \"{}\"}}\n",
                t.value(0).as_int().unwrap(),
                t.value(1).as_float().unwrap(),
                t.value(2).as_bool().unwrap(),
                t.value(3).as_str().unwrap(),
            ));
        }
        let parquet = write_parquet_subset(&s, &tuples).unwrap();

        let from_csv = read_tuples(
            IngestFormat::Csv { has_header: true },
            &mut Cursor::new(csv.as_str()),
            &s,
        )
        .unwrap();
        let from_jsonl = read_tuples(
            IngestFormat::JsonLines,
            &mut Cursor::new(jsonl.as_str()),
            &s,
        )
        .unwrap();
        let from_parquet = read_tuples(
            IngestFormat::Parquet,
            &mut Cursor::new(parquet.as_slice()),
            &s,
        )
        .unwrap();
        assert_eq!(from_csv, tuples);
        assert_eq!(from_jsonl, tuples);
        assert_eq!(from_parquet, tuples);
    }
}
