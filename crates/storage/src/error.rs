//! Error type for the storage layer.
//!
//! Storage faults fall into two operationally distinct classes:
//!
//! * **Transient** faults (interrupted reads, timeouts) that a retry
//!   policy may recover from by re-issuing the I/O.
//! * **Permanent** faults (corrupt blocks, out-of-range indices,
//!   missing files) where retrying cannot help and the caller must
//!   degrade — drop the cluster, renormalize the estimator, or abort.
//!
//! [`StorageError::is_transient`] encodes that classification so the
//! executor's retry policy never has to string-match error messages.

use std::fmt;
use std::sync::Arc;

/// Structured I/O failure: the [`std::io::ErrorKind`] is retained so
/// callers can classify the fault, and the original error (when one
/// exists) is reachable through [`std::error::Error::source`].
#[derive(Debug, Clone)]
pub struct IoFault {
    /// Machine-readable failure class.
    pub kind: std::io::ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Original OS-level error, if this fault wraps one.
    source: Option<Arc<std::io::Error>>,
}

impl IoFault {
    /// Creates a fault with an explicit kind and no underlying OS
    /// error (used by fault injection and validation paths).
    pub fn new(kind: std::io::ErrorKind, message: impl Into<String>) -> Self {
        IoFault {
            kind,
            message: message.into(),
            source: None,
        }
    }
}

// Equality ignores the wrapped source: two faults are the same fault
// if they have the same kind and message. This keeps `StorageError`
// comparable in tests even though `std::io::Error` is not `PartialEq`.
impl PartialEq for IoFault {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind && self.message == other.message
    }
}

impl Eq for IoFault {}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?})", self.message, self.kind)
    }
}

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A block index was outside the file's allocated range.
    BlockOutOfRange {
        /// File that was accessed.
        file: u64,
        /// Requested block index.
        block: u64,
        /// Number of blocks actually allocated.
        len: u64,
    },
    /// A file id did not name an allocated file.
    UnknownFile(u64),
    /// A block's content failed checksum verification on read.
    Corrupt {
        /// File the corrupt block belongs to.
        file: u64,
        /// Index of the corrupt block within the file.
        block: u64,
    },
    /// A tuple did not match the schema it was encoded/decoded with.
    SchemaMismatch(String),
    /// A tuple is too large for a block under the given schema.
    TupleTooLarge {
        /// Encoded tuple size in bytes.
        tuple_size: usize,
        /// Block capacity in bytes.
        block_size: usize,
    },
    /// A string value exceeded the fixed column width.
    StringTooLong {
        /// Column width in bytes.
        width: usize,
        /// Actual string length in bytes.
        len: usize,
    },
    /// Underlying file-backed store failed.
    Io(IoFault),
}

impl StorageError {
    /// Builds an [`StorageError::Io`] with kind
    /// [`std::io::ErrorKind::Other`] from a plain message.
    pub fn io(message: impl Into<String>) -> Self {
        StorageError::Io(IoFault::new(std::io::ErrorKind::Other, message))
    }

    /// True if retrying the failed operation may succeed.
    ///
    /// Only I/O faults whose kind signals a scheduling or timing
    /// hiccup are transient; corruption, range errors, and schema
    /// errors are permanent by construction.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io(fault) => matches!(
                fault.kind,
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
            ),
            _ => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BlockOutOfRange { file, block, len } => write!(
                f,
                "block {block} out of range for file {file} ({len} blocks allocated)"
            ),
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::Corrupt { file, block } => {
                write!(f, "checksum mismatch reading block {block} of file {file}")
            }
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::TupleTooLarge {
                tuple_size,
                block_size,
            } => write!(
                f,
                "tuple of {tuple_size} bytes does not fit in a {block_size}-byte block"
            ),
            StorageError::StringTooLong { width, len } => {
                write!(
                    f,
                    "string of {len} bytes exceeds fixed column width {width}"
                )
            }
            StorageError::Io(fault) => write!(f, "storage I/O error: {fault}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(fault) => fault
                .source
                .as_ref()
                .map(|e| e.as_ref() as &(dyn std::error::Error + 'static)),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(IoFault {
            kind: e.kind(),
            message: e.to_string(),
            source: Some(Arc::new(e)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_is_informative() {
        let e = StorageError::BlockOutOfRange {
            file: 3,
            block: 9,
            len: 4,
        };
        let s = e.to_string();
        assert!(s.contains("block 9"));
        assert!(s.contains("file 3"));
        assert!(s.contains("4 blocks"));
    }

    #[test]
    fn io_error_converts_and_keeps_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::TimedOut, "boom");
        let e: StorageError = io.into();
        match &e {
            StorageError::Io(fault) => {
                assert_eq!(fault.kind, std::io::ErrorKind::TimedOut);
                assert!(fault.message.contains("boom"));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(e.is_transient());
    }

    #[test]
    fn source_reaches_the_original_io_error() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        let src = e.source().expect("io-backed fault has a source");
        assert!(src.to_string().contains("gone"));
        // Synthetic faults have no source.
        assert!(StorageError::io("synthetic").source().is_none());
    }

    #[test]
    fn transience_classification() {
        for kind in [
            std::io::ErrorKind::Interrupted,
            std::io::ErrorKind::TimedOut,
            std::io::ErrorKind::WouldBlock,
        ] {
            let e = StorageError::Io(IoFault::new(kind, "flaky"));
            assert!(e.is_transient(), "{kind:?} should be transient");
        }
        assert!(!StorageError::io("other").is_transient());
        assert!(!StorageError::Corrupt { file: 0, block: 0 }.is_transient());
        assert!(!StorageError::UnknownFile(1).is_transient());
        assert!(!StorageError::BlockOutOfRange {
            file: 0,
            block: 1,
            len: 1
        }
        .is_transient());
    }

    #[test]
    fn io_fault_equality_ignores_source() {
        let with_source: StorageError = std::io::Error::other("boom").into();
        let without = StorageError::Io(IoFault::new(std::io::ErrorKind::Other, "boom"));
        assert_eq!(with_source, without);
    }

    #[test]
    fn corrupt_display_names_the_block() {
        let e = StorageError::Corrupt { file: 7, block: 42 };
        let s = e.to_string();
        assert!(s.contains("block 42"));
        assert!(s.contains("file 7"));
    }
}
