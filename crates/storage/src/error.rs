//! Error type for the storage layer.

use std::fmt;

/// Errors produced by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A block index was outside the file's allocated range.
    BlockOutOfRange {
        /// File that was accessed.
        file: u64,
        /// Requested block index.
        block: u64,
        /// Number of blocks actually allocated.
        len: u64,
    },
    /// A file id did not name an allocated file.
    UnknownFile(u64),
    /// A tuple did not match the schema it was encoded/decoded with.
    SchemaMismatch(String),
    /// A tuple is too large for a block under the given schema.
    TupleTooLarge {
        /// Encoded tuple size in bytes.
        tuple_size: usize,
        /// Block capacity in bytes.
        block_size: usize,
    },
    /// A string value exceeded the fixed column width.
    StringTooLong {
        /// Column width in bytes.
        width: usize,
        /// Actual string length in bytes.
        len: usize,
    },
    /// Underlying file-backed store failed.
    Io(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BlockOutOfRange { file, block, len } => write!(
                f,
                "block {block} out of range for file {file} ({len} blocks allocated)"
            ),
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            StorageError::TupleTooLarge {
                tuple_size,
                block_size,
            } => write!(
                f,
                "tuple of {tuple_size} bytes does not fit in a {block_size}-byte block"
            ),
            StorageError::StringTooLong { width, len } => {
                write!(f, "string of {len} bytes exceeds fixed column width {width}")
            }
            StorageError::Io(msg) => write!(f, "storage I/O error: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::BlockOutOfRange {
            file: 3,
            block: 9,
            len: 4,
        };
        let s = e.to_string();
        assert!(s.contains("block 9"));
        assert!(s.contains("file 3"));
        assert!(s.contains("4 blocks"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(ref m) if m.contains("boom")));
    }
}
