//! Per-column typed layout for one decoded block.
//!
//! The row codec in [`Schema`] decodes a block into a `Vec<Tuple>` —
//! one heap allocation per tuple plus one `Value` tag per field. For
//! the hot selection/key-extraction kernels that is a lot of pointer
//! chasing for work that only ever touches one or two columns. A
//! [`ColumnarBlock`] transposes the same bytes into one typed array
//! per schema column at decode time, so a predicate over column `c`
//! becomes a tight loop over a `Vec<i64>` (or `Vec<f64>`, …) and key
//! extraction reads the key columns without materializing whole rows.
//!
//! The layout is an *alternative decode target*, not an alternative
//! on-disk format: the bytes in the block are identical, and
//! [`ColumnarBlock::to_tuples`] reproduces exactly what
//! [`Schema::decode`] would have produced record by record. That
//! round-trip is the correctness contract — the engine's equivalence
//! suites run the same query under both layouts and require
//! byte-identical reports, so every accessor here must agree with
//! the row path value for value.

use crate::error::StorageError;
use crate::schema::{ColumnType, Schema};
use crate::tuple::{Tuple, Value};
use crate::Result;

/// One column of a [`ColumnarBlock`]: a typed, densely packed array
/// with one entry per record in the block.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// UTF-8 strings.
    Str(Vec<String>),
}

impl ColumnData {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value at `row`, materialized as a dynamic [`Value`].
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Str(v) => Value::Str(v[row].clone()),
        }
    }

    fn with_capacity(ty: ColumnType, n: usize) -> ColumnData {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(n)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(n)),
            ColumnType::Bool => ColumnData::Bool(Vec::with_capacity(n)),
            ColumnType::Str { .. } => ColumnData::Str(Vec::with_capacity(n)),
        }
    }
}

/// A block's records transposed into one typed array per column.
///
/// Built either from raw block bytes ([`ColumnarBlock::decode`]) or
/// from already-decoded rows ([`ColumnarBlock::from_tuples`]); both
/// routes produce identical contents for the same records.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarBlock {
    columns: Vec<ColumnData>,
    len: usize,
}

impl ColumnarBlock {
    /// Decodes the first `n` fixed-width records of `bytes` (laid out
    /// by [`Schema::encode`]) column by column.
    ///
    /// Each column is filled in one pass over the records at that
    /// column's fixed offset — the transpose happens here, once,
    /// instead of per-access later.
    pub fn decode(schema: &Schema, bytes: &[u8], n: usize) -> Result<Self> {
        let rec = schema.record_size();
        if bytes.len() < n * rec {
            return Err(StorageError::SchemaMismatch(format!(
                "block of {} bytes holds fewer than {n} records of {rec} bytes",
                bytes.len()
            )));
        }
        let mut columns = Vec::with_capacity(schema.arity());
        let mut off = 0usize;
        for col in schema.columns() {
            let mut data = ColumnData::with_capacity(col.ty, n);
            for row in 0..n {
                let field = &bytes[row * rec + off..];
                match &mut data {
                    ColumnData::Int(v) => {
                        let raw: [u8; 8] = field[..8].try_into().expect("sized slice");
                        v.push(i64::from_le_bytes(raw));
                    }
                    ColumnData::Float(v) => {
                        let raw: [u8; 8] = field[..8].try_into().expect("sized slice");
                        v.push(f64::from_le_bytes(raw));
                    }
                    ColumnData::Bool(v) => v.push(field[0] != 0),
                    ColumnData::Str(v) => {
                        let ColumnType::Str { width } = col.ty else {
                            unreachable!("Str data only built for Str columns")
                        };
                        let raw: [u8; 2] = field[..2].try_into().expect("sized slice");
                        let len = usize::from(u16::from_le_bytes(raw));
                        if len > usize::from(width) {
                            return Err(StorageError::SchemaMismatch(format!(
                                "string length {len} exceeds column width {width}"
                            )));
                        }
                        let s = std::str::from_utf8(&field[2..2 + len])
                            .map_err(|e| StorageError::SchemaMismatch(e.to_string()))?;
                        v.push(s.to_owned());
                    }
                }
            }
            off += col.ty.encoded_size();
            columns.push(data);
        }
        Ok(ColumnarBlock { columns, len: n })
    }

    /// Transposes already-decoded rows into columns. The rows must
    /// conform to `schema`.
    pub fn from_tuples(schema: &Schema, tuples: &[Tuple]) -> Result<Self> {
        let mut columns: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.ty, tuples.len()))
            .collect();
        for t in tuples {
            schema.check_tuple(t)?;
            for (data, v) in columns.iter_mut().zip(t.values()) {
                match (data, v) {
                    (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
                    (ColumnData::Float(col), Value::Float(x)) => col.push(*x),
                    (ColumnData::Bool(col), Value::Bool(b)) => col.push(*b),
                    (ColumnData::Str(col), Value::Str(s)) => col.push(s.clone()),
                    _ => unreachable!("check_tuple verified types"),
                }
            }
        }
        Ok(ColumnarBlock {
            columns,
            len: tuples.len(),
        })
    }

    /// Number of records in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The typed array for column `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// The value at (`row`, `col`), materialized.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materializes row `row` as a [`Tuple`] — identical to what the
    /// row codec would have decoded for the same record.
    ///
    /// # Panics
    /// Panics if `row` is out of range.
    pub fn tuple(&self, row: usize) -> Tuple {
        Tuple::new(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Materializes every row, in record order.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.len).map(|row| self.tuple(row)).collect()
    }

    /// Materializes only the rows where `mask` is true, in record
    /// order. `mask` must have one entry per record.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.len()`.
    pub fn gather(&self, mask: &[bool]) -> Vec<Tuple> {
        assert_eq!(mask.len(), self.len, "selection mask length mismatch");
        let survivors = mask.iter().filter(|&&b| b).count();
        let mut out = Vec::with_capacity(survivors);
        out.extend(
            (0..self.len)
                .filter(|&row| mask[row])
                .map(|row| self.tuple(row)),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            ("id", ColumnType::Int),
            ("score", ColumnType::Float),
            ("flag", ColumnType::Bool),
            ("name", ColumnType::Str { width: 12 }),
        ])
        .padded_to(64)
    }

    fn sample_tuples(n: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i as i64 - 3),
                    Value::Float(i as f64 * 0.5),
                    Value::Bool(i % 2 == 0),
                    Value::Str(format!("n{i}")),
                ])
            })
            .collect()
    }

    fn encode_all(schema: &Schema, tuples: &[Tuple]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for t in tuples {
            bytes.extend(schema.encode(t).unwrap());
        }
        bytes
    }

    #[test]
    fn decode_matches_row_codec_exactly() {
        let schema = sample_schema();
        let tuples = sample_tuples(7);
        let bytes = encode_all(&schema, &tuples);
        let cb = ColumnarBlock::decode(&schema, &bytes, 7).unwrap();
        assert_eq!(cb.len(), 7);
        assert_eq!(cb.arity(), 4);
        assert_eq!(cb.to_tuples(), tuples, "columnar decode must round-trip");
        for (row, t) in tuples.iter().enumerate() {
            assert_eq!(&cb.tuple(row), t);
            for col in 0..t.arity() {
                assert_eq!(&cb.value(row, col), t.value(col));
            }
        }
    }

    #[test]
    fn from_tuples_equals_decode() {
        let schema = sample_schema();
        let tuples = sample_tuples(5);
        let bytes = encode_all(&schema, &tuples);
        let from_bytes = ColumnarBlock::decode(&schema, &bytes, 5).unwrap();
        let from_rows = ColumnarBlock::from_tuples(&schema, &tuples).unwrap();
        assert_eq!(from_bytes, from_rows);
    }

    #[test]
    fn typed_columns_are_directly_readable() {
        let schema = sample_schema();
        let tuples = sample_tuples(4);
        let cb = ColumnarBlock::from_tuples(&schema, &tuples).unwrap();
        let ColumnData::Int(ids) = cb.column(0) else {
            panic!("column 0 is Int");
        };
        assert_eq!(ids, &vec![-3, -2, -1, 0]);
        let ColumnData::Bool(flags) = cb.column(2) else {
            panic!("column 2 is Bool");
        };
        assert_eq!(flags, &vec![true, false, true, false]);
    }

    #[test]
    fn gather_selects_rows_in_order() {
        let schema = sample_schema();
        let tuples = sample_tuples(4);
        let cb = ColumnarBlock::from_tuples(&schema, &tuples).unwrap();
        let picked = cb.gather(&[true, false, false, true]);
        assert_eq!(picked, vec![tuples[0].clone(), tuples[3].clone()]);
        assert!(cb.gather(&[false; 4]).is_empty());
    }

    #[test]
    fn partial_tail_block_decodes_only_n_records() {
        let schema = Schema::new(vec![("a", ColumnType::Int)]).padded_to(200);
        let tuples: Vec<Tuple> = (0..3).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let mut bytes = encode_all(&schema, &tuples);
        bytes.resize(1024, 0); // zero padding past the last record
        let cb = ColumnarBlock::decode(&schema, &bytes, 3).unwrap();
        assert_eq!(cb.to_tuples(), tuples);
    }

    #[test]
    fn short_buffer_is_rejected() {
        let schema = sample_schema();
        let bytes = vec![0u8; schema.record_size() * 2 - 1];
        assert!(ColumnarBlock::decode(&schema, &bytes, 2).is_err());
    }

    #[test]
    fn mismatched_rows_are_rejected() {
        let schema = sample_schema();
        let bad = Tuple::new(vec![Value::Int(0)]);
        assert!(ColumnarBlock::from_tuples(&schema, &[bad]).is_err());
    }
}
