//! Deterministic seed derivation.
//!
//! Experiments run hundreds of independent trials ("every entry in any
//! table has been obtained from 200 independent experiments"); each
//! trial needs its own independent randomness — for block draws, for
//! device jitter, for workload generation — all reproducible from one
//! master seed. [`SeedSeq`] derives well-mixed sub-seeds by label via
//! the splitmix64 finalizer.

/// Derives independent sub-seeds from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSeq {
    master: u64,
}

impl SeedSeq {
    /// Creates a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSeq { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// A sub-seed for the given label. Distinct labels give
    /// decorrelated seeds; the mapping is pure.
    pub fn derive(&self, label: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(label.wrapping_add(0x9E37_79B9_7F4A_7C15)))
    }

    /// A nested sequence rooted at `derive(label)` — e.g. one per
    /// experiment run, from which per-component seeds are drawn.
    pub fn child(&self, label: u64) -> SeedSeq {
        SeedSeq::new(self.derive(label))
    }
}

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_deterministic() {
        let s = SeedSeq::new(42);
        assert_eq!(s.derive(7), s.derive(7));
        assert_eq!(s.child(3).derive(1), s.child(3).derive(1));
    }

    #[test]
    fn distinct_labels_give_distinct_seeds() {
        let s = SeedSeq::new(1);
        let seeds: HashSet<u64> = (0..10_000).map(|i| s.derive(i)).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn distinct_masters_decorrelate() {
        let a = SeedSeq::new(0);
        let b = SeedSeq::new(1);
        let overlap = (0..1_000).filter(|&i| a.derive(i) == b.derive(i)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn child_differs_from_parent_labels() {
        let s = SeedSeq::new(5);
        assert_ne!(s.child(0).derive(0), s.derive(0));
    }
}
