//! Clocks and deadlines.
//!
//! ERAM's time-control algorithm reads "the current clock time" at the
//! start of every stage and arms "the timer interrupt to T units"
//! (Figure 3.1 of the paper). We abstract both behind [`Clock`]:
//!
//! * [`WallClock`] measures real elapsed time — use it when embedding
//!   the library in an actual interactive or real-time system.
//! * [`SimClock`] is a deterministic virtual clock that only advances
//!   when work is *charged* to it through [`Clock::charge`]. Paired
//!   with a [`crate::DeviceProfile`], it reproduces the paper's 1989
//!   SUN 3/60 timing regime: a 10-second experiment completes in
//!   microseconds of real time while every quota decision, overspend,
//!   and abort happens exactly as it would against a real device.
//!
//! The hard time constraint itself is a [`Deadline`]: a quota measured
//! from a start instant on some clock. The paper's timer-interrupt
//! service routine becomes deadline checks at block granularity inside
//! the evaluation loops — equivalent observable behaviour, since a
//! block is the paper's own cost quantum.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of elapsed time that can also absorb simulated work.
///
/// `elapsed()` is monotone non-decreasing. `charge(d)` accounts for
/// `d` worth of device work: simulated clocks advance by `d`, wall
/// clocks ignore it (the work they measure is real).
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock was created (or last reset).
    fn elapsed(&self) -> Duration;

    /// Account for `d` of simulated device work.
    fn charge(&self, d: Duration);

    /// True if `charge` affects `elapsed` (i.e. this is a simulated
    /// clock). Lets cost-model call sites skip jitter sampling when
    /// running against real time.
    fn is_simulated(&self) -> bool;
}

/// Real elapsed time via [`Instant`]. `charge` is a no-op.
#[derive(Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Creates a wall clock starting now.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    fn charge(&self, _d: Duration) {}

    fn is_simulated(&self) -> bool {
        false
    }
}

/// Deterministic virtual clock; advances only via [`Clock::charge`].
///
/// Internally a single atomic nanosecond counter, so charging from the
/// evaluation inner loop is a `fetch_add` — cheap enough to call per
/// block or per tuple batch.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// Creates a simulated clock at t = 0.
    pub fn new() -> Self {
        SimClock {
            nanos: AtomicU64::new(0),
        }
    }

    /// Resets the clock to t = 0 (useful between experiment runs that
    /// share a clock).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    fn charge(&self, d: Duration) {
        let n = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(n, Ordering::Relaxed);
    }

    fn is_simulated(&self) -> bool {
        true
    }
}

/// A time quota measured against a clock — the paper's hard time
/// constraint "Evaluate f(E) within T time units".
#[derive(Clone)]
pub struct Deadline {
    clock: Arc<dyn Clock>,
    start: Duration,
    quota: Duration,
}

impl Deadline {
    /// Arms a deadline of `quota` starting at the clock's current time.
    pub fn new(clock: Arc<dyn Clock>, quota: Duration) -> Self {
        let start = clock.elapsed();
        Deadline {
            clock,
            start,
            quota,
        }
    }

    /// The total quota `T`.
    pub fn quota(&self) -> Duration {
        self.quota
    }

    /// Time spent since the deadline was armed.
    pub fn spent(&self) -> Duration {
        self.clock.elapsed().saturating_sub(self.start)
    }

    /// Time left before expiry (zero once expired). This is the
    /// `T_i` of the paper's stage loop.
    pub fn remaining(&self) -> Duration {
        self.quota.saturating_sub(self.spent())
    }

    /// True once the quota has been consumed — the paper's timer
    /// interrupt condition.
    pub fn expired(&self) -> bool {
        self.spent() >= self.quota
    }

    /// How far past the quota the clock currently is (zero if not
    /// expired) — the paper's "ovsp" measurement.
    pub fn overspent(&self) -> Duration {
        self.spent().saturating_sub(self.quota)
    }

    /// The clock the deadline is measured against.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }
}

impl std::fmt::Debug for Deadline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deadline")
            .field("quota", &self.quota)
            .field("spent", &self.spent())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_starts_at_zero_and_advances_by_charge() {
        let c = SimClock::new();
        assert_eq!(c.elapsed(), Duration::ZERO);
        c.charge(Duration::from_millis(30));
        c.charge(Duration::from_millis(12));
        assert_eq!(c.elapsed(), Duration::from_millis(42));
        assert!(c.is_simulated());
    }

    #[test]
    fn sim_clock_reset_returns_to_zero() {
        let c = SimClock::new();
        c.charge(Duration::from_secs(5));
        c.reset();
        assert_eq!(c.elapsed(), Duration::ZERO);
    }

    #[test]
    fn wall_clock_ignores_charge_but_advances() {
        let c = WallClock::new();
        c.charge(Duration::from_secs(100));
        assert!(c.elapsed() < Duration::from_secs(1));
        assert!(!c.is_simulated());
    }

    #[test]
    fn deadline_tracks_spend_and_expiry() {
        let clock = Arc::new(SimClock::new());
        clock.charge(Duration::from_secs(3)); // pre-existing time
        let d = Deadline::new(clock.clone(), Duration::from_secs(10));
        assert_eq!(d.spent(), Duration::ZERO);
        assert_eq!(d.remaining(), Duration::from_secs(10));
        assert!(!d.expired());

        clock.charge(Duration::from_secs(4));
        assert_eq!(d.spent(), Duration::from_secs(4));
        assert_eq!(d.remaining(), Duration::from_secs(6));

        clock.charge(Duration::from_secs(7));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        assert_eq!(d.overspent(), Duration::from_secs(1));
    }

    #[test]
    fn deadline_overspent_is_zero_before_expiry() {
        let clock = Arc::new(SimClock::new());
        let d = Deadline::new(clock.clone(), Duration::from_secs(2));
        clock.charge(Duration::from_secs(1));
        assert_eq!(d.overspent(), Duration::ZERO);
    }
}
