//! Heap files: unordered files of fixed-width tuples.
//!
//! A [`HeapFile`] holds one relation instance or one intermediate
//! (temporary) result as a sequence of blocks, `blocking_factor`
//! tuples per block. It is the object the cluster sampling plan draws
//! from: "disk blocks are randomly chosen from each operand relation".

use std::sync::Arc;

use crate::block::Block;
use crate::columnar::ColumnarBlock;
use crate::disk::{Disk, FileId};
use crate::error::StorageError;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::Result;

/// An unordered file of fixed-width tuples packed into blocks.
#[derive(Clone)]
pub struct HeapFile {
    disk: Arc<Disk>,
    file: FileId,
    schema: Arc<Schema>,
    blocking_factor: usize,
    n_tuples: u64,
    pending: Vec<Tuple>,
    charged_writes: bool,
}

impl HeapFile {
    /// Creates an empty heap file.
    ///
    /// `charged_writes` selects whether appends consume simulated time
    /// (temporary results produced *during* a query) or not (loading
    /// base relations before the quota is armed).
    ///
    /// # Panics
    /// Panics if a record does not fit in one block.
    pub fn create(disk: Arc<Disk>, schema: Schema, charged_writes: bool) -> Self {
        let blocking_factor = schema.blocking_factor(disk.block_size());
        let file = disk.create_file();
        HeapFile {
            disk,
            file,
            schema: Arc::new(schema),
            blocking_factor,
            n_tuples: 0,
            pending: Vec::with_capacity(blocking_factor),
            charged_writes,
        }
    }

    /// Bulk-loads a base relation without charging the clock.
    pub fn load<I: IntoIterator<Item = Tuple>>(
        disk: Arc<Disk>,
        schema: Schema,
        tuples: I,
    ) -> Result<Self> {
        let mut hf = HeapFile::create(disk, schema, false);
        for t in tuples {
            hf.append(t)?;
        }
        hf.flush()?;
        Ok(hf)
    }

    /// Re-points this handle at another view of the same disk (the
    /// file id is preserved — it must resolve on `disk`'s backend).
    /// The executor re-bases a catalog relation onto a per-job lane
    /// view this way, so the job's draws charge its own clock while
    /// reading the shared backend bytes.
    pub fn with_disk(mut self, disk: Arc<Disk>) -> Self {
        self.disk = disk;
        self
    }

    /// The schema of the stored tuples.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// The file id on the disk.
    pub fn file_id(&self) -> FileId {
        self.file
    }

    /// Tuples per block.
    pub fn blocking_factor(&self) -> usize {
        self.blocking_factor
    }

    /// The file's current content version (see
    /// [`Disk::file_version`]): bumped on every flushed block write,
    /// so decoded-tuple caches can tell whether an entry still
    /// matches the bytes on disk.
    pub fn version(&self) -> u64 {
        self.disk.file_version(self.file)
    }

    /// Total tuples appended (including any unflushed tail).
    pub fn num_tuples(&self) -> u64 {
        self.n_tuples
    }

    /// Number of blocks the file occupies once flushed.
    pub fn num_blocks(&self) -> u64 {
        let bf = self.blocking_factor as u64;
        self.n_tuples.div_ceil(bf)
    }

    /// Number of tuples stored in block `index`.
    pub fn tuples_in_block(&self, index: u64) -> u64 {
        let bf = self.blocking_factor as u64;
        let start = index * bf;
        if start >= self.n_tuples {
            0
        } else {
            (self.n_tuples - start).min(bf)
        }
    }

    /// Appends a tuple, writing out a block whenever one fills.
    pub fn append(&mut self, t: Tuple) -> Result<()> {
        self.schema.check_tuple(&t)?;
        self.pending.push(t);
        self.n_tuples += 1;
        if self.pending.len() == self.blocking_factor {
            self.write_pending()?;
        }
        Ok(())
    }

    /// Appends many tuples.
    pub fn append_all<I: IntoIterator<Item = Tuple>>(&mut self, tuples: I) -> Result<()> {
        for t in tuples {
            self.append(t)?;
        }
        Ok(())
    }

    /// Writes out any partially filled tail block. Must be called
    /// before reading a file that was just written.
    pub fn flush(&mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.write_pending()?;
        }
        Ok(())
    }

    fn write_pending(&mut self) -> Result<()> {
        let mut block = Block::zeroed(self.disk.block_size());
        let rec = self.schema.record_size();
        for (i, t) in self.pending.iter().enumerate() {
            self.schema
                .encode_into(t, &mut block.bytes_mut()[i * rec..(i + 1) * rec])?;
        }
        if self.charged_writes {
            self.disk.append_block(self.file, block)?;
        } else {
            self.disk.append_block_uncharged(self.file, block)?;
        }
        self.pending.clear();
        Ok(())
    }

    /// Decodes the tuples stored in `block`, which must be block
    /// `index` of this file. Pure CPU work: charges nothing and
    /// touches no shared state, so callers may decode fetched blocks
    /// on worker threads.
    pub fn decode_block(&self, index: u64, block: &Block) -> Result<Vec<Tuple>> {
        let n = usize::try_from(self.tuples_in_block(index)).expect("fits usize");
        let rec = self.schema.record_size();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.schema.decode(&block.bytes()[i * rec..(i + 1) * rec])?);
        }
        Ok(out)
    }

    /// Decodes the tuples stored in `block` into a per-column typed
    /// layout instead of row tuples. Same contract as
    /// [`HeapFile::decode_block`] — pure CPU, worker-thread safe —
    /// and `decode_block_columnar(i, b)?.to_tuples()` is exactly
    /// `decode_block(i, b)?`.
    pub fn decode_block_columnar(&self, index: u64, block: &Block) -> Result<ColumnarBlock> {
        let n = usize::try_from(self.tuples_in_block(index)).expect("fits usize");
        ColumnarBlock::decode(&self.schema, block.bytes(), n)
    }

    /// Fetches raw block `index`, charging one block read (or cache
    /// hit), without decoding. Pair with [`HeapFile::decode_block`] to
    /// split the charged fetch from the pure decode.
    pub fn read_block_raw(&self, index: u64) -> Result<Arc<Block>> {
        if index >= self.num_blocks() {
            return Err(StorageError::BlockOutOfRange {
                file: self.file.0,
                block: index,
                len: self.num_blocks(),
            });
        }
        self.disk.read_block(self.file, index)
    }

    /// Reads and decodes block `index`, charging one block read.
    pub fn read_block(&self, index: u64) -> Result<Vec<Tuple>> {
        let block = self.read_block_raw(index)?;
        self.decode_block(index, &block)
    }

    /// Reads and decodes block `index` without charging the clock.
    pub fn read_block_uncharged(&self, index: u64) -> Result<Vec<Tuple>> {
        if index >= self.num_blocks() {
            return Err(StorageError::BlockOutOfRange {
                file: self.file.0,
                block: index,
                len: self.num_blocks(),
            });
        }
        let block = self.disk.read_block_uncharged(self.file, index)?;
        self.decode_block(index, &block)
    }

    /// All tuples, read without charging the clock (ground truth).
    pub fn scan_uncharged(&self) -> Result<Vec<Tuple>> {
        let mut out = Vec::with_capacity(usize::try_from(self.n_tuples).expect("fits"));
        for i in 0..self.num_blocks() {
            out.extend(self.read_block_uncharged(i)?);
        }
        Ok(out)
    }

    /// Releases the file's blocks. The heap file must not be used
    /// afterwards; intended for dropping temporaries between stages.
    pub fn free(self) {
        self.disk.free_file(self.file);
    }
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("file", &self.file)
            .field("n_tuples", &self.n_tuples)
            .field("blocks", &self.num_blocks())
            .field("blocking_factor", &self.blocking_factor)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, SimClock};
    use crate::cost::DeviceProfile;
    use crate::schema::ColumnType;
    use crate::tuple::Value;
    use std::time::Duration;

    fn test_disk() -> (Arc<SimClock>, Arc<Disk>) {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new(
            clock.clone(),
            DeviceProfile::sun_3_60().without_jitter(),
            11,
        );
        (clock, disk)
    }

    fn int_schema() -> Schema {
        Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200)
    }

    fn int_tuple(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Value::Int(a), Value::Int(b)])
    }

    #[test]
    fn paper_geometry_5_tuples_per_block() {
        let (_, disk) = test_disk();
        let hf = HeapFile::load(disk, int_schema(), (0..10_000).map(|i| int_tuple(i, -i))).unwrap();
        assert_eq!(hf.blocking_factor(), 5);
        assert_eq!(hf.num_tuples(), 10_000);
        assert_eq!(hf.num_blocks(), 2_000);
        assert_eq!(hf.tuples_in_block(0), 5);
        assert_eq!(hf.tuples_in_block(1_999), 5);
    }

    #[test]
    fn round_trip_through_blocks() {
        let (_, disk) = test_disk();
        let tuples: Vec<Tuple> = (0..13).map(|i| int_tuple(i, i * 10)).collect();
        let hf = HeapFile::load(disk, int_schema(), tuples.clone()).unwrap();
        assert_eq!(hf.num_blocks(), 3);
        assert_eq!(hf.tuples_in_block(2), 3);
        assert_eq!(hf.scan_uncharged().unwrap(), tuples);
        assert_eq!(hf.read_block_uncharged(2).unwrap().len(), 3);
    }

    #[test]
    fn load_does_not_charge_but_reads_do() {
        let (clock, disk) = test_disk();
        let hf =
            HeapFile::load(disk.clone(), int_schema(), (0..25).map(|i| int_tuple(i, 0))).unwrap();
        assert_eq!(clock.elapsed(), Duration::ZERO);
        hf.read_block(0).unwrap();
        assert_eq!(clock.elapsed(), disk.profile().block_read);
    }

    #[test]
    fn charged_temp_writes_advance_clock() {
        let (clock, disk) = test_disk();
        let mut hf = HeapFile::create(disk.clone(), int_schema(), true);
        hf.append_all((0..5).map(|i| int_tuple(i, 0))).unwrap();
        hf.flush().unwrap();
        assert_eq!(clock.elapsed(), disk.profile().block_write);
    }

    #[test]
    fn read_past_end_is_an_error() {
        let (_, disk) = test_disk();
        let hf = HeapFile::load(disk, int_schema(), (0..5).map(|i| int_tuple(i, 0))).unwrap();
        assert!(matches!(
            hf.read_block_uncharged(1),
            Err(StorageError::BlockOutOfRange { .. })
        ));
    }

    #[test]
    fn append_rejects_schema_violation() {
        let (_, disk) = test_disk();
        let mut hf = HeapFile::create(disk, int_schema(), false);
        let bad = Tuple::new(vec![Value::Bool(true), Value::Int(0)]);
        assert!(hf.append(bad).is_err());
        assert_eq!(hf.num_tuples(), 0);
    }

    #[test]
    fn empty_file_has_no_blocks() {
        let (_, disk) = test_disk();
        let hf = HeapFile::create(disk, int_schema(), false);
        assert_eq!(hf.num_blocks(), 0);
        assert_eq!(hf.tuples_in_block(0), 0);
        assert!(hf.scan_uncharged().unwrap().is_empty());
    }

    #[test]
    fn columnar_decode_equals_row_decode_including_partial_tail() {
        let (_, disk) = test_disk();
        let tuples: Vec<Tuple> = (0..13).map(|i| int_tuple(i, i * 10)).collect();
        let hf = HeapFile::load(disk.clone(), int_schema(), tuples).unwrap();
        for b in 0..hf.num_blocks() {
            let raw = disk.read_block_uncharged(hf.file_id(), b).unwrap();
            let rows = hf.decode_block(b, &raw).unwrap();
            let cols = hf.decode_block_columnar(b, &raw).unwrap();
            assert_eq!(cols.to_tuples(), rows, "layouts disagree at block {b}");
        }
    }

    #[test]
    fn free_releases_blocks() {
        let (_, disk) = test_disk();
        let hf =
            HeapFile::load(disk.clone(), int_schema(), (0..5).map(|i| int_tuple(i, 0))).unwrap();
        let id = hf.file_id();
        hf.free();
        assert!(disk.num_blocks(id).is_err());
    }
}
