//! Fixed-size disk blocks.
//!
//! The paper's experimental setup: "each relation instance consists of
//! 2,000 disk blocks (1K bytes in each disk block) with 5 tuples in
//! each disk block. Each disk block is a sampling unit from a
//! relation." A [`Block`] here is exactly that 1 KB page (the size is
//! configurable per [`crate::Disk`], defaulting to [`BLOCK_SIZE`]).

use serde::{Deserialize, Serialize};

/// Default block size in bytes (the paper's 1 KB).
pub const BLOCK_SIZE: usize = 1024;

/// Identifies one block within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId {
    /// File the block belongs to.
    pub file: u64,
    /// Zero-based block index within the file.
    pub index: u64,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(file: u64, index: u64) -> Self {
        BlockId { file, index }
    }
}

/// A fixed-size page of raw bytes.
///
/// Blocks own their storage; the tuple layout inside a block is
/// defined by [`crate::Schema`] (fixed-width records packed from the
/// front, `blocking_factor` records per block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    data: Box<[u8]>,
}

impl Block {
    /// Creates a zero-filled block of `size` bytes.
    pub fn zeroed(size: usize) -> Self {
        Block {
            data: vec![0u8; size].into_boxed_slice(),
        }
    }

    /// Block capacity in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the block has zero capacity (never the case for blocks
    /// allocated through [`crate::Disk`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the block's bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the block's bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_has_requested_size() {
        let b = Block::zeroed(BLOCK_SIZE);
        assert_eq!(b.len(), 1024);
        assert!(b.bytes().iter().all(|&x| x == 0));
        assert!(!b.is_empty());
    }

    #[test]
    fn block_bytes_are_writable() {
        let mut b = Block::zeroed(16);
        b.bytes_mut()[3] = 0xAB;
        assert_eq!(b.bytes()[3], 0xAB);
    }

    #[test]
    fn block_ids_order_by_file_then_index() {
        let a = BlockId::new(1, 5);
        let b = BlockId::new(2, 0);
        let c = BlockId::new(1, 9);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }
}
