//! Fixed-size disk blocks.
//!
//! The paper's experimental setup: "each relation instance consists of
//! 2,000 disk blocks (1K bytes in each disk block) with 5 tuples in
//! each disk block. Each disk block is a sampling unit from a
//! relation." A [`Block`] here is exactly that 1 KB page (the size is
//! configurable per [`crate::Disk`], defaulting to [`BLOCK_SIZE`]).

use serde::{Deserialize, Serialize};

/// Default block size in bytes (the paper's 1 KB).
pub const BLOCK_SIZE: usize = 1024;

/// Identifies one block within one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId {
    /// File the block belongs to.
    pub file: u64,
    /// Zero-based block index within the file.
    pub index: u64,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(file: u64, index: u64) -> Self {
        BlockId { file, index }
    }
}

/// A fixed-size page of raw bytes.
///
/// Blocks own their storage; the tuple layout inside a block is
/// defined by [`crate::Schema`] (fixed-width records packed from the
/// front, `blocking_factor` records per block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    data: Box<[u8]>,
}

impl Block {
    /// Creates a zero-filled block of `size` bytes.
    pub fn zeroed(size: usize) -> Self {
        Block {
            data: vec![0u8; size].into_boxed_slice(),
        }
    }

    /// Block capacity in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the block has zero capacity (never the case for blocks
    /// allocated through [`crate::Disk`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the block's bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the block's bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// 64-bit FNV-1a checksum over the block's bytes.
    ///
    /// Recorded on every write and verified on every charged read by
    /// [`crate::Disk`]; a mismatch surfaces as
    /// [`crate::StorageError::Corrupt`]. FNV-1a is not cryptographic,
    /// but a single flipped bit anywhere in the block always changes
    /// the digest, which is the failure model we defend against.
    pub fn checksum(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for &byte in self.data.iter() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_block_has_requested_size() {
        let b = Block::zeroed(BLOCK_SIZE);
        assert_eq!(b.len(), 1024);
        assert!(b.bytes().iter().all(|&x| x == 0));
        assert!(!b.is_empty());
    }

    #[test]
    fn block_bytes_are_writable() {
        let mut b = Block::zeroed(16);
        b.bytes_mut()[3] = 0xAB;
        assert_eq!(b.bytes()[3], 0xAB);
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let mut b = Block::zeroed(64);
        for (i, byte) in b.bytes_mut().iter_mut().enumerate() {
            *byte = (i * 7) as u8;
        }
        let clean = b.checksum();
        for bit in 0..(64 * 8) {
            let mut flipped = b.clone();
            flipped.bytes_mut()[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(flipped.checksum(), clean, "bit {bit} went undetected");
        }
    }

    #[test]
    fn checksum_is_deterministic() {
        let b = Block::zeroed(BLOCK_SIZE);
        assert_eq!(b.checksum(), b.checksum());
        let mut c = Block::zeroed(BLOCK_SIZE);
        c.bytes_mut()[0] = 1;
        assert_ne!(b.checksum(), c.checksum());
    }

    #[test]
    fn block_ids_order_by_file_then_index() {
        let a = BlockId::new(1, 5);
        let b = BlockId::new(2, 0);
        let c = BlockId::new(1, 9);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }
}
