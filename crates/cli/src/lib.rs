//! Command-line plumbing for the `eram` binary.
//!
//! The binary itself (`src/main.rs`) is a thin shell over this
//! library so argument parsing and command dispatch are unit-tested.
//!
//! ```text
//! eram --load orders=orders.csv:id:int,price:float \
//!      [--device sun|modern] [--cache BLOCKS] [--seed N] [--header]
//!      [--quota SECS --query 'select[#1 < 5](orders)' \
//!       [--agg count|sum:N|avg:N[:by:G]|count:by:G]]
//! ```
//!
//! With `--query` the command runs once and exits; with `--serve` a
//! JSON batch of deadline-bound jobs is served through the
//! admission-controlled [`QueryServer`] (see `README.md` §"Serving
//! under load"); without either an interactive shell starts
//! (`count <expr> within <secs>`, `sum <col> <expr> within <secs>`,
//! `avg <col> <expr> within <secs>`, `exact <expr>`, `relations`,
//! `help`, `quit`).

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::path::PathBuf;
use std::time::Duration;

use eram_core::{
    AggregateFn, BlockLayout, Concurrency, Database, MetricsSnapshot, ProfileSnapshot, Profiler,
    QueryServer, ReportHealth, ServerJob, ServerOutcome, Tracer,
};
use eram_relalg::parse_expr;
use eram_storage::{parse_schema_spec, DeviceProfile, FaultPlan, IngestFormat};
use serde::Deserialize;

/// Which simulated device profile to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Device {
    /// The paper's SUN 3/60 (seconds-scale quotas).
    #[default]
    Sun,
    /// A modern NVMe-scale device (millisecond quotas).
    Modern,
}

/// One `--load` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSpec {
    /// Relation name.
    pub name: String,
    /// CSV path.
    pub path: PathBuf,
    /// Compact schema spec (`col:type,...`).
    pub schema_spec: String,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cli {
    /// Relations to load.
    pub loads: Vec<LoadSpec>,
    /// Device profile.
    pub device: Device,
    /// Buffer-cache blocks (0 = none, the paper's setup).
    pub cache_blocks: usize,
    /// Master seed.
    pub seed: u64,
    /// CSV files carry a header row.
    pub header: bool,
    /// One-shot query (otherwise: interactive shell).
    pub query: Option<String>,
    /// One-shot quota in seconds.
    pub quota_secs: Option<f64>,
    /// One-shot aggregate.
    pub agg: AggregateFn,
    /// Seed for deterministic fault injection.
    pub fault_seed: u64,
    /// Probability a charged block read fails transiently.
    pub fault_transient: f64,
    /// Probability a block site reads back corrupt (checksum
    /// mismatch).
    pub fault_corrupt: f64,
    /// Probability a charged block read suffers an extra latency
    /// spike.
    pub fault_spike: f64,
    /// Duration of one latency spike, in milliseconds (default
    /// 1000 when `--fault-spike` is set without `--fault-spike-ms`).
    pub fault_spike_ms: u64,
    /// Serve a JSON batch of deadline-bound jobs from this file
    /// through the admission-controlled query server.
    pub serve: Option<PathBuf>,
    /// Write the full `ServerOutcome` JSON here after `--serve`.
    pub jobs_out: Option<PathBuf>,
    /// Write a clock-charged execution trace (JSONL) to this path
    /// after a one-shot query.
    pub trace: Option<PathBuf>,
    /// Collect and render storage/stage-loop metrics.
    pub metrics: bool,
    /// Collect the per-tenant SLO ledger and decision audit log into
    /// the `--serve` outcome. Pure observation: the job table, trace,
    /// and the rest of the outcome are identical with or without it.
    pub ledger: bool,
    /// Lane scheduling for `--serve` (`seq` = the sequential oracle,
    /// `interleaved` = turnstile stages + shared block draws).
    /// Per-job reports and traces are byte-identical in either mode;
    /// only the schedule report and sharing counters differ.
    pub concurrency: Concurrency,
    /// Profile the run and print the top phases by wall time after
    /// the health line. Pure observation: the estimate, trace, and
    /// report are identical with or without it.
    pub profile: bool,
    /// Worker threads for the pure-CPU stage work (0 means 1 —
    /// `Default` leaves it at 0, so treat it through `max(1)`).
    /// Estimates and traces are identical at any worker count.
    pub workers: usize,
    /// Tuple bound for each binary operator's decoded-run cache
    /// (`Some(0)` disables it; `None` keeps the engine default).
    /// Wall-clock only: estimates and traces are identical at any
    /// setting.
    pub run_cache_tuples: Option<usize>,
    /// How sampled blocks are decoded and traversed (`row` or
    /// `columnar`). Wall-clock only: estimates and traces are
    /// identical under either layout.
    pub layout: BlockLayout,
    /// Input format for every `--load` file (`None` = CSV honouring
    /// `--header`, the historical behaviour).
    pub ingest: Option<IngestFormat>,
}

/// A CLI-level error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "usage: eram --load NAME=FILE.csv:COL:TYPE[,COL:TYPE...] \
[--load ...] [--ingest csv|jsonl|parquet] [--device sun|modern] [--cache BLOCKS] \
[--seed N] [--header] \
[--fault-transient RATE] [--fault-corrupt RATE] [--fault-spike RATE] \
[--fault-spike-ms MS] [--fault-seed N] \
[--trace FILE] [--metrics] [--profile] [--workers N] [--run-cache-tuples N] \
[--layout row|columnar] \
[--query EXPR --quota SECS \
[--agg count|sum:COL|avg:COL|count:by:G|sum:COL:by:G|avg:COL:by:G]] \
[--serve JOBS.json [--jobs-out FILE] [--ledger] [--concurrency seq|interleaved]]";

impl Cli {
    /// Parses arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cli = Cli::default();
        let mut agg_seen = false;
        let mut args = args.into_iter().map(Into::into);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--load" => {
                    let spec = args
                        .next()
                        .ok_or_else(|| err("--load needs NAME=FILE:SCHEMA"))?;
                    cli.loads.push(parse_load(&spec)?);
                }
                "--device" => {
                    cli.device = match args.next().as_deref() {
                        Some("sun") => Device::Sun,
                        Some("modern") => Device::Modern,
                        other => return Err(err(format!("bad --device {other:?}"))),
                    };
                }
                "--cache" => {
                    cli.cache_blocks = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--cache needs a block count"))?;
                }
                "--seed" => {
                    cli.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--seed needs an integer"))?;
                }
                "--header" => cli.header = true,
                "--query" => {
                    cli.query = Some(
                        args.next()
                            .ok_or_else(|| err("--query needs an expression"))?,
                    )
                }
                "--quota" => {
                    let secs: f64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--quota needs seconds"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(err("--quota must be a non-negative number of seconds"));
                    }
                    cli.quota_secs = Some(secs);
                }
                "--agg" => {
                    cli.agg = parse_agg(&args.next().ok_or_else(|| {
                        err("--agg needs count|sum:COL|avg:COL (optionally :by:G)")
                    })?)?;
                    agg_seen = true;
                }
                "--fault-seed" => {
                    cli.fault_seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--fault-seed needs an integer"))?;
                }
                "--fault-transient" => {
                    cli.fault_transient = parse_rate(args.next(), "--fault-transient")?;
                }
                "--fault-corrupt" => {
                    cli.fault_corrupt = parse_rate(args.next(), "--fault-corrupt")?;
                }
                "--fault-spike" => {
                    cli.fault_spike = parse_rate(args.next(), "--fault-spike")?;
                }
                "--fault-spike-ms" => {
                    cli.fault_spike_ms = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--fault-spike-ms needs milliseconds"))?;
                }
                "--serve" => {
                    cli.serve = Some(PathBuf::from(
                        args.next().ok_or_else(|| err("--serve needs a path"))?,
                    ));
                }
                "--jobs-out" => {
                    cli.jobs_out = Some(PathBuf::from(
                        args.next().ok_or_else(|| err("--jobs-out needs a path"))?,
                    ));
                }
                "--trace" => {
                    cli.trace = Some(PathBuf::from(
                        args.next().ok_or_else(|| err("--trace needs a path"))?,
                    ));
                }
                "--metrics" => cli.metrics = true,
                "--ledger" => cli.ledger = true,
                "--concurrency" => {
                    let mode = args
                        .next()
                        .ok_or_else(|| err("--concurrency needs seq|interleaved"))?;
                    cli.concurrency = Concurrency::parse(&mode)
                        .ok_or_else(|| err(format!("unknown concurrency mode {mode:?}")))?;
                }
                "--profile" => cli.profile = true,
                "--workers" => {
                    let n: usize = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--workers needs a thread count"))?;
                    if n == 0 {
                        return Err(err("--workers must be at least 1"));
                    }
                    cli.workers = n;
                }
                "--run-cache-tuples" => {
                    let n: usize = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--run-cache-tuples needs a tuple count (0 = off)"))?;
                    cli.run_cache_tuples = Some(n);
                }
                "--layout" => {
                    cli.layout = match args.next().as_deref() {
                        Some("row") => BlockLayout::Row,
                        Some("columnar") => BlockLayout::Columnar,
                        other => {
                            return Err(err(format!(
                                "bad --layout {other:?} (expected row or columnar)"
                            )))
                        }
                    };
                }
                "--ingest" => {
                    let name = args
                        .next()
                        .ok_or_else(|| err("--ingest needs a format (csv, jsonl, or parquet)"))?;
                    cli.ingest = Some(
                        IngestFormat::parse(&name)
                            .map_err(|e| err(format!("bad --ingest {name:?}: {e}")))?,
                    );
                }
                "--help" | "-h" => return Err(err(USAGE)),
                other => return Err(err(format!("unknown argument {other:?}\n{USAGE}"))),
            }
        }
        if cli.query.is_some() && cli.quota_secs.is_none() {
            return Err(err("--query requires --quota"));
        }
        if cli.query.is_some() && cli.serve.is_some() {
            return Err(err("--query and --serve are mutually exclusive"));
        }
        if cli.jobs_out.is_some() && cli.serve.is_none() {
            return Err(err("--jobs-out requires --serve"));
        }
        if cli.ledger && cli.serve.is_none() {
            return Err(err("--ledger requires --serve"));
        }
        // `--agg` used to be accepted (and silently ignored) without a
        // query: the aggregate only applies to a one-shot `--query`
        // (served jobs carry their own `agg` field).
        if agg_seen && cli.query.is_none() {
            return Err(err(if cli.serve.is_some() {
                "--agg applies to --query only; served jobs set \"agg\" per job in the JSON batch"
            } else {
                "--agg requires --query"
            }));
        }
        Ok(cli)
    }

    /// The fault plan the flags describe, or `None` when every rate
    /// is zero (clean device).
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if self.fault_transient == 0.0 && self.fault_corrupt == 0.0 && self.fault_spike == 0.0 {
            return None;
        }
        let mut plan = FaultPlan::new(self.fault_seed)
            .with_transient(self.fault_transient)
            .with_corruption(self.fault_corrupt);
        if self.fault_spike > 0.0 {
            let spike_ms = if self.fault_spike_ms == 0 {
                1000
            } else {
                self.fault_spike_ms
            };
            plan = plan.with_spikes(self.fault_spike, Duration::from_millis(spike_ms));
        }
        Some(plan)
    }
}

fn parse_rate(arg: Option<String>, flag: &str) -> Result<f64, CliError> {
    let rate: f64 = arg
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err(format!("{flag} needs a probability")))?;
    if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
        return Err(err(format!("{flag} must be a probability in [0, 1]")));
    }
    Ok(rate)
}

fn parse_load(spec: &str) -> Result<LoadSpec, CliError> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| err(format!("bad --load {spec:?}: expected NAME=FILE:SCHEMA")))?;
    let (path, schema_spec) = rest
        .split_once(':')
        .ok_or_else(|| err(format!("bad --load {spec:?}: expected NAME=FILE:SCHEMA")))?;
    if name.is_empty() || path.is_empty() || schema_spec.is_empty() {
        return Err(err(format!("bad --load {spec:?}")));
    }
    Ok(LoadSpec {
        name: name.to_owned(),
        path: PathBuf::from(path),
        schema_spec: schema_spec.to_owned(),
    })
}

fn parse_agg(text: &str) -> Result<AggregateFn, CliError> {
    AggregateFn::parse(text).map_err(|e| {
        err(format!(
            "bad --agg {text:?}: {e} (expected count|sum:COL|avg:COL, optionally :by:G)"
        ))
    })
}

/// Builds the database and loads every `--load` relation.
pub fn build_database(cli: &Cli) -> Result<Database, CliError> {
    let profile = match cli.device {
        Device::Sun => DeviceProfile::sun_3_60(),
        Device::Modern => DeviceProfile::modern(),
    };
    let mut db = if cli.cache_blocks > 0 {
        Database::sim_cached(profile, cli.seed, cli.cache_blocks)
    } else {
        Database::sim(profile, cli.seed)
    };
    if cli.device == Device::Modern {
        db.set_default_cost_model(eram_core::CostModel::modern_default());
    }
    // `--ingest csv` (and the no-flag default) honours `--header`;
    // the other formats are self-describing per record.
    let format = match cli.ingest {
        None | Some(IngestFormat::Csv { .. }) => IngestFormat::Csv {
            has_header: cli.header,
        },
        Some(f) => f,
    };
    for load in &cli.loads {
        let schema = parse_schema_spec(&load.schema_spec, None)
            .map_err(|e| err(format!("--load {}: {e}", load.name)))?;
        let n = db
            .load_ingest(load.name.clone(), schema, &load.path, format)
            .map_err(|e| err(format!("--load {}: {e}", load.name)))?;
        eprintln!("loaded {} ({n} tuples)", load.name);
    }
    // Arm fault injection only after loading so the injected fault
    // sites refer to the final on-device layout.
    if let Some(plan) = cli.fault_plan() {
        db.inject_faults(plan);
        eprintln!(
            "fault injection armed: transient {:.1}%, corrupt {:.1}%, spike {:.1}% (seed {})",
            100.0 * plan.transient_rate,
            100.0 * plan.corrupt_rate,
            100.0 * plan.spike_rate,
            plan.seed,
        );
    }
    Ok(db)
}

/// Renders the report's fault-tolerance counters as one line.
fn render_health(h: &ReportHealth) -> String {
    format!(
        "health: faults {} | retries {} | blocks lost {} | degraded {}",
        h.faults_seen,
        h.retries,
        h.blocks_lost,
        if h.degraded { "yes" } else { "no" },
    )
}

/// Renders the metrics snapshot: counters one per line, then
/// histogram means (map order, i.e. sorted by name).
fn render_metrics(m: &MetricsSnapshot) -> String {
    let mut out = String::from("metrics:");
    for (name, v) in &m.counters {
        out.push_str(&format!("\n  {name} = {v}"));
    }
    for (name, h) in &m.histograms {
        let mean = h.mean().unwrap_or(0.0);
        out.push_str(&format!(
            "\n  {name}: n {} mean {mean:.4} min {:.4} max {:.4}",
            h.count, h.min, h.max
        ));
    }
    out
}

/// Renders the top phases of a profile snapshot as a fixed-width
/// table: wall time (what the process spent), simulated charge (what
/// the paper's clock billed), calls, and the wall p95 per call.
fn render_profile(snap: &ProfileSnapshot, top_n: usize) -> String {
    let mut out = format!(
        "profile (top {top_n} phases by wall time):\n  {:<20} {:>8} {:>12} {:>12} {:>12}",
        "phase", "calls", "wall(ms)", "sim(ms)", "p95(us)"
    );
    for (name, stats) in snap.top_phases(top_n) {
        out.push_str(&format!(
            "\n  {:<20} {:>8} {:>12.3} {:>12.3} {:>12.1}",
            name,
            stats.calls,
            stats.wall_ns as f64 / 1e6,
            stats.sim_ns as f64 / 1e6,
            stats.wall_p95_ns as f64 / 1e3,
        ));
    }
    out.push_str(&format!(
        "\n  total wall {:.3} ms | total simulated charge {:.3} ms",
        snap.total_wall_ns() as f64 / 1e6,
        snap.total_sim_ns() as f64 / 1e6,
    ));
    out
}

/// Runs a one-shot aggregate and renders the outcome. With
/// `--trace FILE` the clock-charged execution trace is written to
/// `FILE` as JSONL; with `--metrics` the report's counters are
/// appended to the rendering; with `--profile` the top phases by
/// wall time follow the health line.
pub fn run_one_shot(db: &mut Database, cli: &Cli) -> Result<String, CliError> {
    let text = cli.query.as_deref().expect("caller checked");
    let quota = Duration::from_secs_f64(cli.quota_secs.expect("caller checked"));
    let expr = parse_expr(text).map_err(|e| err(e.to_string()))?;
    let tracer = if cli.trace.is_some() {
        Tracer::recording(db.disk().clock().clone())
    } else {
        Tracer::disabled()
    };
    let profiler = if cli.profile {
        Profiler::recording(db.disk().clock().clone())
    } else {
        Profiler::disabled()
    };
    let mut query = db
        .aggregate(cli.agg, expr)
        .within(quota)
        .tracer(tracer.clone())
        .metrics(cli.metrics)
        .profiler(profiler)
        .workers(cli.workers.max(1))
        .block_layout(cli.layout);
    if let Some(tuples) = cli.run_cache_tuples {
        query = query.run_cache(tuples);
    }
    let out = query.run().map_err(|e| err(e.to_string()))?;
    let (lo, hi) = out.estimate.ci(0.95);
    let mut rendered = format!(
        "estimate {:.2}\n95% CI [{lo:.2}, {hi:.2}]\nstages {} | blocks {} | utilization {:.1}% | elapsed {:?}\n{}",
        out.estimate.estimate,
        out.report.completed_stages(),
        out.report.blocks_evaluated(),
        100.0 * out.report.utilization(),
        out.report.total_elapsed,
        render_health(&out.report.health),
    );
    for g in &out.report.groups {
        let (glo, ghi) = g.estimate.ci(0.95);
        rendered.push_str(&format!(
            "\ngroup {}: estimate {:.2} | 95% CI [{glo:.2}, {ghi:.2}] | tuples {}{}{}",
            g.key,
            g.estimate.estimate,
            g.tuples_seen,
            match g.converged_at_stage {
                Some(s) => format!(" | converged at stage {s}"),
                None => String::new(),
            },
            if g.exact { " | exact" } else { "" },
        ));
    }
    if let Some(snap) = &out.report.profile {
        rendered.push('\n');
        rendered.push_str(&render_profile(snap, 5));
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, tracer.to_jsonl())
            .map_err(|e| err(format!("--trace {}: {e}", path.display())))?;
        rendered.push_str(&format!(
            "\ntrace: {} records → {}",
            tracer.record_count(),
            path.display()
        ));
    }
    if let Some(metrics) = &out.report.metrics {
        rendered.push('\n');
        rendered.push_str(&render_metrics(metrics));
    }
    Ok(rendered)
}

/// One job in a `--serve` batch file: a JSON array of these.
///
/// ```json
/// [
///   {"name": "dash", "expr": "select[#1 < 50](orders)", "deadline_secs": 5.0},
///   {"name": "audit", "expr": "orders", "deadline_secs": 20.0,
///    "min_quota_secs": 2.0, "desired_secs": 8.0, "value": 0.5, "agg": "sum:1"}
/// ]
/// ```
#[derive(Debug, Clone, Deserialize)]
pub struct JobSpec {
    /// Label for reporting.
    pub name: String,
    /// The expression, in the `eram` parser syntax.
    pub expr: String,
    /// Absolute deadline in seconds, from batch start.
    pub deadline_secs: f64,
    /// Minimum useful quota in seconds (default: the engine's
    /// documented 100 ms).
    #[serde(default)]
    pub min_quota_secs: Option<f64>,
    /// Desired quota cap in seconds (default: the full deadline).
    #[serde(default)]
    pub desired_secs: Option<f64>,
    /// Relative worth under overload shedding (default 1.0).
    #[serde(default)]
    pub value: Option<f64>,
    /// Aggregate: `count` | `sum:COL` | `avg:COL`, each optionally
    /// suffixed `:by:G` for GROUP BY (default `count`).
    #[serde(default)]
    pub agg: Option<String>,
}

impl JobSpec {
    /// Lowers the spec into a [`ServerJob`].
    pub fn into_job(self) -> Result<ServerJob, CliError> {
        let expr = parse_expr(&self.expr).map_err(|e| err(format!("job {}: {e}", self.name)))?;
        let agg = match &self.agg {
            None => AggregateFn::Count,
            // Name the offending job, not "--agg" — the spec came from
            // the JSON batch, not the command line.
            Some(text) => AggregateFn::parse(text)
                .map_err(|e| err(format!("job {}: bad agg {text:?}: {e}", self.name)))?,
        };
        for (field, v) in [
            ("deadline_secs", Some(self.deadline_secs)),
            ("min_quota_secs", self.min_quota_secs),
            ("desired_secs", self.desired_secs),
        ] {
            if let Some(v) = v {
                if !v.is_finite() || v < 0.0 {
                    return Err(err(format!(
                        "job {}: {field} must be a non-negative number of seconds",
                        self.name
                    )));
                }
            }
        }
        let mut job = ServerJob::new(
            self.name,
            agg,
            expr,
            Duration::from_secs_f64(self.deadline_secs),
        );
        if let Some(secs) = self.min_quota_secs {
            job = job.with_min_quota(Duration::from_secs_f64(secs));
        }
        if let Some(secs) = self.desired_secs {
            job = job.with_desired_quota(Duration::from_secs_f64(secs));
        }
        if let Some(value) = self.value {
            job = job.with_value(value);
        }
        Ok(job)
    }
}

/// Renders a served batch as a fixed-width table plus the stats line.
fn render_server(outcome: &ServerOutcome) -> String {
    let mut out = format!(
        "{:<12} {:>10} {:>10} {:>10} {:>12}  {}",
        "job", "deadline", "granted", "finished", "estimate", "state"
    );
    for job in &outcome.jobs {
        let estimate = job
            .estimate
            .map(|e| format!("{:.2}", e.estimate))
            .unwrap_or_else(|| "-".into());
        let state = match &job.state {
            eram_core::JobState::Done => {
                if job.met() {
                    "done (met)".to_string()
                } else {
                    "done (LATE)".to_string()
                }
            }
            eram_core::JobState::Refused { reason } => format!("refused: {reason}"),
            eram_core::JobState::Failed { error } => format!("failed: {error}"),
        };
        out.push_str(&format!(
            "\n{:<12} {:>10.2} {:>10.2} {:>10.2} {:>12}  {state}",
            job.name,
            job.deadline.as_secs_f64(),
            job.granted_quota.as_secs_f64(),
            job.finished_at.as_secs_f64(),
            estimate,
        ));
    }
    let s = &outcome.stats;
    out.push_str(&format!(
        "\noffered {} | admitted {} | refused {} | shed {} | failed {} | met {}/{} completed",
        s.offered, s.admitted, s.refused, s.shed, s.failed, s.deadlines_met, s.completed,
    ));
    out
}

/// Serves the `--serve` batch through the admission-controlled
/// [`QueryServer`] and renders a per-job table. With `--jobs-out
/// FILE` the full [`ServerOutcome`] JSON is written to `FILE`; with
/// `--trace FILE` the interleaved server + engine trace is written as
/// JSONL; with `--ledger` the outcome carries the per-tenant SLO
/// ledger and decision audit log (for `eram-explain`).
pub fn run_serve(db: &mut Database, cli: &Cli) -> Result<String, CliError> {
    let path = cli.serve.as_ref().expect("caller checked");
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(format!("--serve {}: {e}", path.display())))?;
    let specs: Vec<JobSpec> =
        serde_json::from_str(&text).map_err(|e| err(format!("--serve {}: {e}", path.display())))?;
    let jobs: Vec<ServerJob> = specs
        .into_iter()
        .map(JobSpec::into_job)
        .collect::<Result<_, _>>()?;
    let tracer = if cli.trace.is_some() {
        Tracer::recording(db.disk().clock().clone())
    } else {
        Tracer::disabled()
    };
    let outcome = QueryServer::new()
        .workers(cli.workers.max(1))
        .metrics(cli.metrics)
        .ledger(cli.ledger)
        .concurrency(cli.concurrency)
        .tracer(tracer.clone())
        .run(db, jobs);
    let mut rendered = render_server(&outcome);
    if let Some(schedule) = &outcome.schedule {
        rendered.push_str(&format!(
            "\nschedule: {} | makespan {:.2}s (virtual {:.2}s) | blocks {} charged / {} physical \
             | shared {} (saved {:.3}s)",
            schedule.concurrency.as_str(),
            schedule.makespan.as_secs_f64(),
            schedule.virtual_makespan.as_secs_f64(),
            schedule.charged_blocks,
            schedule.physical_blocks,
            schedule.blocks_shared,
            schedule.charge_saved_ns as f64 / 1e9,
        ));
    }
    if let Some(ledger) = &outcome.ledger {
        rendered.push_str(&format!(
            "\nledger: {} tenant(s), {} decision(s), {} refit(s)",
            ledger.tenants.len(),
            ledger.decisions.len(),
            ledger.refits.len()
        ));
    }
    if let Some(path) = &cli.jobs_out {
        std::fs::write(path, outcome.to_json())
            .map_err(|e| err(format!("--jobs-out {}: {e}", path.display())))?;
        rendered.push_str(&format!("\noutcome: {}", path.display()));
    }
    if let Some(path) = &cli.trace {
        std::fs::write(path, tracer.to_jsonl())
            .map_err(|e| err(format!("--trace {}: {e}", path.display())))?;
        rendered.push_str(&format!(
            "\ntrace: {} records → {}",
            tracer.record_count(),
            path.display()
        ));
    }
    if cli.metrics {
        if let Some(metrics) = &outcome.metrics {
            rendered.push('\n');
            rendered.push_str(&render_metrics(metrics));
        }
    }
    Ok(rendered)
}

/// Dispatches one interactive command. `Ok(None)` means quit.
pub fn dispatch(db: &mut Database, input: &str) -> Result<Option<String>, CliError> {
    let input = input.trim();
    if input.is_empty() {
        return Ok(Some(String::new()));
    }
    if input == "quit" || input == "exit" {
        return Ok(None);
    }
    if input == "help" {
        return Ok(Some(
            "  count <expr> within <secs>\n  sum <col> <expr> within <secs>\n  \
             avg <col> <expr> within <secs>\n  exact <expr>\n  relations\n  quit"
                .into(),
        ));
    }
    if input == "relations" {
        let mut out = String::new();
        for name in db.catalog().names() {
            if let Some(r) = db.catalog().relation(name) {
                out.push_str(&format!(
                    "  {name}: {} tuples, {} blocks\n",
                    r.num_tuples(),
                    r.num_blocks()
                ));
            }
        }
        return Ok(Some(out.trim_end().to_string()));
    }
    if let Some(rest) = input.strip_prefix("exact ") {
        let expr = parse_expr(rest.trim()).map_err(|e| err(e.to_string()))?;
        let n = db.exact_count(&expr).map_err(|e| err(e.to_string()))?;
        return Ok(Some(format!("  exact COUNT = {n}")));
    }
    for (prefix, make) in [
        ("count ", None),
        ("sum ", Some(true)),
        ("avg ", Some(false)),
    ] {
        if let Some(rest) = input.strip_prefix(prefix) {
            let (agg, rest) = match make {
                None => (AggregateFn::Count, rest),
                Some(is_sum) => {
                    let (col, tail) = rest
                        .trim_start()
                        .split_once(' ')
                        .ok_or_else(|| err(format!("usage: {prefix}<col> <expr> within <secs>")))?;
                    let column: usize = col.parse().map_err(|_| err("bad column index"))?;
                    let agg = if is_sum {
                        AggregateFn::Sum { column }
                    } else {
                        AggregateFn::Avg { column }
                    };
                    (agg, tail)
                }
            };
            let (expr_text, quota_text) = rest
                .rsplit_once(" within ")
                .ok_or_else(|| err(format!("usage: {prefix}... <expr> within <secs>")))?;
            let expr = parse_expr(expr_text.trim()).map_err(|e| err(e.to_string()))?;
            let secs: f64 = quota_text
                .trim()
                .parse()
                .map_err(|_| err("quota must be a number of seconds"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(err("quota must be a non-negative number of seconds"));
            }
            let out = db
                .aggregate(agg, expr)
                .within(Duration::from_secs_f64(secs))
                .run()
                .map_err(|e| err(e.to_string()))?;
            let (lo, hi) = out.estimate.ci(0.95);
            let mut rendered = format!(
                "  ≈ {:.2}   (95% CI [{lo:.2}, {hi:.2}])\n  {} stages, {} blocks, {:.1}% of quota used",
                out.estimate.estimate,
                out.report.completed_stages(),
                out.report.blocks_evaluated(),
                100.0 * out.report.utilization(),
            );
            if out.report.health.faults_seen > 0 {
                rendered.push_str(&format!("\n  {}", render_health(&out.report.health)));
            }
            return Ok(Some(rendered));
        }
    }
    Err(err(format!("unknown command {input:?}; try `help`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_csv(name: &str, content: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("eram-cli-{name}-{}.csv", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn parses_full_command_line() {
        let cli = Cli::parse([
            "--load",
            "orders=o.csv:id:int,price:float",
            "--device",
            "modern",
            "--cache",
            "128",
            "--seed",
            "9",
            "--header",
            "--query",
            "select[#0 < 5](orders)",
            "--quota",
            "2.5",
            "--agg",
            "sum:1",
            "--workers",
            "4",
            "--run-cache-tuples",
            "4096",
        ])
        .unwrap();
        assert_eq!(cli.loads.len(), 1);
        assert_eq!(cli.loads[0].name, "orders");
        assert_eq!(cli.loads[0].schema_spec, "id:int,price:float");
        assert_eq!(cli.device, Device::Modern);
        assert_eq!(cli.cache_blocks, 128);
        assert_eq!(cli.seed, 9);
        assert!(cli.header);
        assert_eq!(cli.quota_secs, Some(2.5));
        assert_eq!(cli.agg, AggregateFn::Sum { column: 1 });
        assert_eq!(cli.workers, 4);
        assert_eq!(cli.run_cache_tuples, Some(4096));
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(Cli::parse(["--load", "noequals"]).is_err());
        assert!(Cli::parse(["--quota", "nan"]).is_err());
        assert!(Cli::parse(["--quota", "inf"]).is_err());
        assert!(Cli::parse(["--quota", "-2"]).is_err());
        assert!(Cli::parse(["--device", "vax"]).is_err());
        assert!(Cli::parse(["--agg", "median:1"]).is_err());
        assert!(Cli::parse(["--query", "r"]).is_err()); // no quota
        assert!(Cli::parse(["--flux"]).is_err());
        assert!(Cli::parse(["--cache"]).is_err());
        assert!(Cli::parse(["--workers"]).is_err()); // missing count
        assert!(Cli::parse(["--workers", "0"]).is_err());
        assert!(Cli::parse(["--workers", "two"]).is_err());
        assert!(Cli::parse(["--run-cache-tuples"]).is_err()); // missing count
        assert!(Cli::parse(["--run-cache-tuples", "many"]).is_err());
        assert!(Cli::parse(["--concurrency"]).is_err()); // missing mode
        assert!(Cli::parse(["--concurrency", "parallel"]).is_err());
    }

    #[test]
    fn concurrency_mode_parses_with_a_sequential_default() {
        assert_eq!(
            Cli::parse::<_, String>([]).unwrap().concurrency,
            Concurrency::Sequential
        );
        for (token, mode) in [
            ("seq", Concurrency::Sequential),
            ("sequential", Concurrency::Sequential),
            ("interleaved", Concurrency::Interleaved),
        ] {
            let cli = Cli::parse(["--concurrency", token]).unwrap();
            assert_eq!(cli.concurrency, mode, "--concurrency {token}");
        }
    }

    #[test]
    fn malformed_agg_specs_return_structured_usage_errors() {
        // Every malformed grammar corner returns a structured
        // CliError naming the flag and the offending spec — never a
        // panic, never a silent default to `count`.
        for bad in [
            "sum::by:",    // empty column AND empty group
            "avg:COL:by:", // non-numeric column, empty group
            "median:1",    // unknown kind
            "sum:",        // missing column
            "avg",         // missing column entirely
            "count:1",     // count takes no column
            "sum:1:by:",   // empty group column
            "sum:1:by:x",  // non-numeric group column
            "sum:1:of:2",  // bad separator
            "",            // empty spec
        ] {
            let e = Cli::parse(["--query", "r", "--quota", "1", "--agg", bad])
                .expect_err(&format!("--agg {bad:?} must be rejected"));
            assert!(
                e.0.contains("bad --agg") && e.0.contains(&format!("{bad:?}")),
                "--agg {bad:?}: error must name the flag and spec, got {:?}",
                e.0
            );
        }
        // Valid grouped specs still parse.
        let cli = Cli::parse(["--query", "r", "--quota", "1", "--agg", "sum:1:by:2"]).unwrap();
        assert_eq!(
            cli.agg,
            AggregateFn::SumBy {
                column: 1,
                group: 2
            }
        );
    }

    #[test]
    fn agg_without_a_query_is_rejected_not_ignored() {
        // Regression: `--agg` with neither `--query` nor `--serve`
        // used to parse fine and be silently ignored.
        let e = Cli::parse(["--agg", "sum:1"]).unwrap_err();
        assert!(e.0.contains("--agg requires --query"), "{:?}", e.0);
        // With `--serve`, per-job "agg" fields are the mechanism; a
        // top-level --agg would be dead weight, so it errors too.
        let e = Cli::parse(["--serve", "jobs.json", "--agg", "sum:1"]).unwrap_err();
        assert!(e.0.contains("per job"), "{:?}", e.0);
    }

    #[test]
    fn job_spec_agg_errors_name_the_job() {
        let spec = JobSpec {
            name: "audit".into(),
            expr: "r".into(),
            deadline_secs: 1.0,
            min_quota_secs: None,
            desired_secs: None,
            value: None,
            agg: Some("sum::by:".into()),
        };
        let e = spec.into_job().unwrap_err();
        assert!(
            e.0.contains("job audit") && e.0.contains("sum::by:"),
            "{:?}",
            e.0
        );
        assert!(!e.0.contains("--agg"), "batch errors must not blame a flag");
    }

    #[test]
    fn run_cache_zero_is_off_and_default_is_engine_choice() {
        assert_eq!(
            Cli::parse(Vec::<String>::new()).unwrap().run_cache_tuples,
            None
        );
        let cli = Cli::parse(["--run-cache-tuples", "0"]).unwrap();
        assert_eq!(cli.run_cache_tuples, Some(0));
    }

    #[test]
    fn parses_layout_and_ingest_flags() {
        let cli = Cli::parse(["--layout", "columnar", "--ingest", "jsonl"]).unwrap();
        assert_eq!(cli.layout, BlockLayout::Columnar);
        assert_eq!(cli.ingest, Some(IngestFormat::JsonLines));
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.layout, BlockLayout::Row);
        assert_eq!(cli.ingest, None);
        assert!(Cli::parse(["--layout", "diagonal"]).is_err());
        assert!(Cli::parse(["--layout"]).is_err());
        assert!(Cli::parse(["--ingest", "orc"]).is_err());
        assert!(Cli::parse(["--ingest"]).is_err());
    }

    #[test]
    fn one_shot_is_identical_across_layouts_and_ingest_formats() {
        let rows_csv: String = (0..512).map(|i| format!("{i},{}\n", i % 100)).collect();
        let csv = write_csv("layout-csv", &rows_csv);
        let rows_jsonl: String = (0..512).map(|i| format!("[{i}, {}]\n", i % 100)).collect();
        let jsonl = write_csv("layout-jsonl", &rows_jsonl);
        let run = |load: String, extra: &[&str]| {
            let mut args = vec![
                "--load".to_string(),
                load,
                "--query".to_string(),
                "select[#1 < 50](t)".to_string(),
                "--quota".to_string(),
                "5".to_string(),
            ];
            args.extend(extra.iter().map(|s| s.to_string()));
            let cli = Cli::parse(args).unwrap();
            let mut db = build_database(&cli).unwrap();
            run_one_shot(&mut db, &cli).unwrap()
        };
        let load = format!("t={}:k:int,v:int", csv.display());
        let row = run(load.clone(), &[]);
        let columnar = run(load, &["--layout", "columnar"]);
        assert_eq!(row, columnar, "layouts must render identically");
        let via_jsonl = run(
            format!("t={}:k:int,v:int", jsonl.display()),
            &["--ingest", "jsonl", "--layout", "columnar"],
        );
        assert_eq!(row, via_jsonl, "ingest formats must load identically");
        let _ = std::fs::remove_file(csv);
        let _ = std::fs::remove_file(jsonl);
    }

    #[test]
    fn parses_fault_flags_into_a_plan() {
        let cli = Cli::parse([
            "--fault-transient",
            "0.05",
            "--fault-corrupt",
            "0.01",
            "--fault-seed",
            "7",
        ])
        .unwrap();
        let plan = cli.fault_plan().expect("rates are nonzero");
        assert_eq!(plan.seed, 7);
        assert!((plan.transient_rate - 0.05).abs() < 1e-12);
        assert!((plan.corrupt_rate - 0.01).abs() < 1e-12);
        // No flags → no plan.
        assert!(Cli::parse(Vec::<String>::new())
            .unwrap()
            .fault_plan()
            .is_none());
        // Rates outside [0, 1] are rejected at parse time.
        assert!(Cli::parse(["--fault-transient", "1.5"]).is_err());
        assert!(Cli::parse(["--fault-corrupt", "-0.1"]).is_err());
        assert!(Cli::parse(["--fault-transient", "nan"]).is_err());
    }

    #[test]
    fn parses_spike_and_serve_flags() {
        let cli = Cli::parse([
            "--fault-spike",
            "0.2",
            "--fault-spike-ms",
            "500",
            "--serve",
            "jobs.json",
            "--jobs-out",
            "out.json",
        ])
        .unwrap();
        assert_eq!(cli.fault_spike, 0.2);
        assert_eq!(cli.fault_spike_ms, 500);
        assert_eq!(cli.serve, Some(PathBuf::from("jobs.json")));
        assert_eq!(cli.jobs_out, Some(PathBuf::from("out.json")));
        let plan = cli.fault_plan().expect("spike rate is nonzero");
        assert_eq!(plan.spike_rate, 0.2);
        assert_eq!(plan.spike, Duration::from_millis(500));
        // Spike alone arms a plan; the default spike is one second.
        let plan = Cli::parse(["--fault-spike", "0.1"])
            .unwrap()
            .fault_plan()
            .unwrap();
        assert_eq!(plan.spike, Duration::from_millis(1000));
        // Bad combinations are rejected at parse time.
        assert!(Cli::parse(["--fault-spike", "2.0"]).is_err());
        assert!(Cli::parse(["--jobs-out", "x.json"]).is_err()); // no --serve
        assert!(Cli::parse(["--query", "r", "--quota", "1", "--serve", "jobs.json"]).is_err());
        // `--ledger` is a serve-mode flag.
        let cli = Cli::parse(["--serve", "jobs.json", "--ledger"]).unwrap();
        assert!(cli.ledger);
        assert!(Cli::parse(["--ledger"]).is_err());
        assert!(Cli::parse(["--query", "r", "--quota", "1", "--ledger"]).is_err());
    }

    #[test]
    fn serve_runs_a_batch_and_writes_the_outcome() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let rows: String = (0..512).map(|i| format!("{i},{}\n", i % 100)).collect();
        let csv = write_csv("served", &rows);
        let jobs_path =
            std::env::temp_dir().join(format!("eram-cli-jobs-{}.json", std::process::id()));
        let out_path =
            std::env::temp_dir().join(format!("eram-cli-out-{}.json", std::process::id()));
        std::fs::write(
            &jobs_path,
            r#"[
                {"name": "dash", "expr": "select[#1 < 50](t)", "deadline_secs": 8.0},
                {"name": "tiny", "expr": "t", "deadline_secs": 0.05},
                {"name": "audit", "expr": "t", "deadline_secs": 25.0,
                 "desired_secs": 5.0, "value": 0.5, "agg": "sum:1"}
            ]"#,
        )
        .unwrap();
        let cli = Cli::parse([
            "--load".to_string(),
            format!("t={}:k:int,v:int", csv.display()),
            "--serve".to_string(),
            jobs_path.display().to_string(),
            "--jobs-out".to_string(),
            out_path.display().to_string(),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();
        let rendered = run_serve(&mut db, &cli).unwrap();
        assert!(rendered.contains("done (met)"), "{rendered}");
        assert!(rendered.contains("refused: infeasible"), "{rendered}");
        assert!(rendered.contains("offered 3 | admitted 2"), "{rendered}");
        let outcome: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap()).unwrap();
        assert_eq!(outcome["stats"]["offered"], 3);
        assert_eq!(outcome["stats"]["refused"], 1);
        assert_eq!(outcome["jobs"].as_array().unwrap().len(), 3);
        let _ = std::fs::remove_file(csv);
        let _ = std::fs::remove_file(jobs_path);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn serve_with_ledger_rides_the_outcome_without_perturbing_it() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let rows: String = (0..512).map(|i| format!("{i},{}\n", i % 100)).collect();
        let csv = write_csv("served-ledger", &rows);
        let jobs_path =
            std::env::temp_dir().join(format!("eram-cli-ljobs-{}.json", std::process::id()));
        let out_path =
            std::env::temp_dir().join(format!("eram-cli-lout-{}.json", std::process::id()));
        std::fs::write(
            &jobs_path,
            r#"[
                {"name": "dash", "expr": "select[#1 < 50](t)", "deadline_secs": 8.0},
                {"name": "tiny", "expr": "t", "deadline_secs": 0.05}
            ]"#,
        )
        .unwrap();
        let run = |ledger: bool| {
            let mut args = vec![
                "--load".to_string(),
                format!("t={}:k:int,v:int", csv.display()),
                "--serve".to_string(),
                jobs_path.display().to_string(),
                "--jobs-out".to_string(),
                out_path.display().to_string(),
            ];
            if ledger {
                args.push("--ledger".to_string());
            }
            let cli = Cli::parse(args).unwrap();
            let mut db = build_database(&cli).unwrap();
            let rendered = run_serve(&mut db, &cli).unwrap();
            (rendered, std::fs::read_to_string(&out_path).unwrap())
        };
        let (plain_render, plain_json) = run(false);
        let (ledger_render, ledger_json) = run(true);
        assert!(!plain_render.contains("ledger:"), "{plain_render}");
        assert!(
            ledger_render.contains("ledger: 2 tenant(s)"),
            "{ledger_render}"
        );
        let outcome: serde_json::Value = serde_json::from_str(&ledger_json).unwrap();
        assert_eq!(outcome["ledger"]["tenants"]["dash"]["completed"], 1);
        assert_eq!(outcome["ledger"]["tenants"]["tiny"]["refused"], 1);
        // Pure observation: stripping the ledger restores the exact
        // bytes of the ledger-off outcome.
        let mut stripped: eram_core::ServerOutcome = serde_json::from_str(&ledger_json).unwrap();
        stripped.ledger = None;
        assert_eq!(stripped.to_json(), plain_json);
        let _ = std::fs::remove_file(csv);
        let _ = std::fs::remove_file(jobs_path);
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn job_spec_validation_rejects_bad_fields() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let spec: JobSpec = serde_json::from_str(
            r#"{"name": "x", "expr": "not a query ((", "deadline_secs": 1.0}"#,
        )
        .unwrap();
        assert!(spec.into_job().is_err());
        let spec: JobSpec =
            serde_json::from_str(r#"{"name": "x", "expr": "t", "deadline_secs": -1.0}"#).unwrap();
        assert!(spec.into_job().is_err());
        let spec: JobSpec = serde_json::from_str(
            r#"{"name": "x", "expr": "t", "deadline_secs": 1.0, "agg": "median:1"}"#,
        )
        .unwrap();
        assert!(spec.into_job().is_err());
        let spec: JobSpec = serde_json::from_str(
            r#"{"name": "x", "expr": "t", "deadline_secs": 5.0,
                "min_quota_secs": 0.5, "desired_secs": 2.0, "value": 3.0, "agg": "avg:1"}"#,
        )
        .unwrap();
        let job = spec.into_job().unwrap();
        assert_eq!(job.min_quota, Duration::from_secs_f64(0.5));
        assert_eq!(job.desired_quota, Duration::from_secs(2));
        assert_eq!(job.value, 3.0);
        assert_eq!(job.agg, AggregateFn::Avg { column: 1 });
    }

    #[test]
    fn one_shot_under_faults_still_answers_and_shows_health() {
        let rows: String = (0..512).map(|i| format!("{i},{}\n", i % 100)).collect();
        let csv = write_csv("faulty", &rows);
        let cli = Cli::parse([
            "--load".to_string(),
            format!("t={}:k:int,v:int", csv.display()),
            "--query".to_string(),
            "select[#1 < 50](t)".to_string(),
            "--quota".to_string(),
            "30".to_string(),
            "--fault-transient".to_string(),
            "0.2".to_string(),
            "--fault-seed".to_string(),
            "11".to_string(),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();
        let rendered = run_one_shot(&mut db, &cli).unwrap();
        assert!(rendered.contains("estimate"), "{rendered}");
        assert!(rendered.contains("health: faults"), "{rendered}");
    }

    #[test]
    fn parses_trace_and_metrics_flags() {
        let cli = Cli::parse(["--trace", "out.jsonl", "--metrics", "--profile"]).unwrap();
        assert_eq!(cli.trace, Some(PathBuf::from("out.jsonl")));
        assert!(cli.metrics);
        assert!(cli.profile);
        assert!(Cli::parse(["--trace"]).is_err()); // missing path
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.trace, None);
        assert!(!cli.metrics);
        assert!(!cli.profile);
    }

    #[test]
    fn one_shot_trace_writes_parseable_jsonl_and_metrics_render() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let rows: String = (0..256).map(|i| format!("{i},{}\n", i % 100)).collect();
        let csv = write_csv("traced", &rows);
        let trace_path =
            std::env::temp_dir().join(format!("eram-cli-trace-{}.jsonl", std::process::id()));
        let cli = Cli::parse([
            "--load".to_string(),
            format!("t={}:k:int,v:int", csv.display()),
            "--query".to_string(),
            "select[#1 < 50](t)".to_string(),
            "--quota".to_string(),
            "10".to_string(),
            "--trace".to_string(),
            trace_path.display().to_string(),
            "--metrics".to_string(),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();
        let rendered = run_one_shot(&mut db, &cli).unwrap();
        assert!(rendered.contains("trace:"), "{rendered}");
        assert!(rendered.contains("metrics:"), "{rendered}");
        assert!(rendered.contains("core.stages"), "{rendered}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(!trace.is_empty());
        // First line is the schema header, every later line a record.
        let mut lines = trace.lines();
        let header: serde_json::Value = serde_json::from_str(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema_version").and_then(|v| v.as_u64()),
            Some(u64::from(eram_core::SCHEMA_VERSION))
        );
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("t_ns").is_some(), "every record is stamped: {line}");
            assert!(v.get("kind").is_some(), "{line}");
        }
        let _ = std::fs::remove_file(csv);
        let _ = std::fs::remove_file(trace_path);
    }

    #[test]
    fn one_shot_profile_renders_phase_table_and_keeps_estimate() {
        let rows: String = (0..512).map(|i| format!("{i},{}\n", i % 100)).collect();
        let csv = write_csv("profiled", &rows);
        let base_args = |profile: bool| {
            let mut args = vec![
                "--load".to_string(),
                format!("t={}:k:int,v:int", csv.display()),
                "--query".to_string(),
                "select[#1 < 50](t)".to_string(),
                "--quota".to_string(),
                "10".to_string(),
            ];
            if profile {
                args.push("--profile".to_string());
            }
            args
        };
        let cli_plain = Cli::parse(base_args(false)).unwrap();
        let mut db = build_database(&cli_plain).unwrap();
        let plain = run_one_shot(&mut db, &cli_plain).unwrap();
        assert!(!plain.contains("profile ("), "{plain}");

        let cli_prof = Cli::parse(base_args(true)).unwrap();
        let mut db = build_database(&cli_prof).unwrap();
        let profiled = run_one_shot(&mut db, &cli_prof).unwrap();
        assert!(profiled.contains("profile (top 5 phases"), "{profiled}");
        assert!(profiled.contains("total wall"), "{profiled}");
        // The phase table is appended after the health line; the
        // simulated results above it are untouched by profiling.
        let head = |s: &str| {
            s.lines()
                .take_while(|l| !l.starts_with("profile ("))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(head(&plain), head(&profiled));
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn end_to_end_one_shot() {
        let csv = write_csv(
            "oneshot",
            "id,price\n0,10\n1,20\n2,30\n3,40\n4,50\n5,60\n6,70\n7,80\n",
        );
        let cli = Cli::parse([
            "--load".to_string(),
            format!("orders={}:id:int,price:int", csv.display()),
            "--header".to_string(),
            "--query".to_string(),
            "select[#1 >= 50](orders)".to_string(),
            "--quota".to_string(),
            "60".to_string(),
            "--workers".to_string(),
            "4".to_string(),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();
        let rendered = run_one_shot(&mut db, &cli).unwrap();
        // Tiny relation + big quota → census → exact 4.
        assert!(rendered.contains("estimate 4.00"), "{rendered}");
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn interactive_dispatch_round_trip() {
        let csv = write_csv("shell", "0,5\n1,15\n2,25\n3,35\n");
        let cli = Cli::parse([
            "--load".to_string(),
            format!("t={}:k:int,v:int", csv.display()),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();

        let out = dispatch(&mut db, "relations").unwrap().unwrap();
        assert!(out.contains("t: 4 tuples"));

        let out = dispatch(&mut db, "exact select[#1 > 10](t)")
            .unwrap()
            .unwrap();
        assert!(out.contains("= 3"));

        let out = dispatch(&mut db, "count select[#1 > 10](t) within 60")
            .unwrap()
            .unwrap();
        assert!(out.contains("≈ 3.00"), "{out}");

        let out = dispatch(&mut db, "sum 1 t within 60").unwrap().unwrap();
        assert!(out.contains("≈ 80.00"), "{out}");

        let out = dispatch(&mut db, "avg 1 t within 60").unwrap().unwrap();
        assert!(out.contains("≈ 20.00"), "{out}");

        assert!(dispatch(&mut db, "quit").unwrap().is_none());
        assert!(dispatch(&mut db, "explode").is_err());
        assert!(dispatch(&mut db, "count t").is_err()); // missing within
        let _ = std::fs::remove_file(csv);
    }
}
