//! Command-line plumbing for the `eram` binary.
//!
//! The binary itself (`src/main.rs`) is a thin shell over this
//! library so argument parsing and command dispatch are unit-tested.
//!
//! ```text
//! eram --load orders=orders.csv:id:int,price:float \
//!      [--device sun|modern] [--cache BLOCKS] [--seed N] [--header]
//!      [--quota SECS --query 'select[#1 < 5](orders)' [--agg count|sum:N|avg:N]]
//! ```
//!
//! With `--query` the command runs once and exits; without it an
//! interactive shell starts (`count <expr> within <secs>`,
//! `sum <col> <expr> within <secs>`, `avg <col> <expr> within <secs>`,
//! `exact <expr>`, `relations`, `help`, `quit`).

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::path::PathBuf;
use std::time::Duration;

use eram_core::{AggregateFn, Database};
use eram_relalg::parse_expr;
use eram_storage::{parse_schema_spec, DeviceProfile};

/// Which simulated device profile to run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Device {
    /// The paper's SUN 3/60 (seconds-scale quotas).
    #[default]
    Sun,
    /// A modern NVMe-scale device (millisecond quotas).
    Modern,
}

/// One `--load` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadSpec {
    /// Relation name.
    pub name: String,
    /// CSV path.
    pub path: PathBuf,
    /// Compact schema spec (`col:type,...`).
    pub schema_spec: String,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Cli {
    /// Relations to load.
    pub loads: Vec<LoadSpec>,
    /// Device profile.
    pub device: Device,
    /// Buffer-cache blocks (0 = none, the paper's setup).
    pub cache_blocks: usize,
    /// Master seed.
    pub seed: u64,
    /// CSV files carry a header row.
    pub header: bool,
    /// One-shot query (otherwise: interactive shell).
    pub query: Option<String>,
    /// One-shot quota in seconds.
    pub quota_secs: Option<f64>,
    /// One-shot aggregate.
    pub agg: AggregateFn,
}

/// A CLI-level error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "usage: eram --load NAME=FILE.csv:COL:TYPE[,COL:TYPE...] \
[--load ...] [--device sun|modern] [--cache BLOCKS] [--seed N] [--header] \
[--query EXPR --quota SECS [--agg count|sum:COL|avg:COL]]";

impl Cli {
    /// Parses arguments (without the program name).
    pub fn parse<I, S>(args: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cli = Cli::default();
        let mut args = args.into_iter().map(Into::into);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--load" => {
                    let spec = args.next().ok_or_else(|| err("--load needs NAME=FILE:SCHEMA"))?;
                    cli.loads.push(parse_load(&spec)?);
                }
                "--device" => {
                    cli.device = match args.next().as_deref() {
                        Some("sun") => Device::Sun,
                        Some("modern") => Device::Modern,
                        other => return Err(err(format!("bad --device {other:?}"))),
                    };
                }
                "--cache" => {
                    cli.cache_blocks = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--cache needs a block count"))?;
                }
                "--seed" => {
                    cli.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--seed needs an integer"))?;
                }
                "--header" => cli.header = true,
                "--query" => {
                    cli.query = Some(args.next().ok_or_else(|| err("--query needs an expression"))?)
                }
                "--quota" => {
                    let secs: f64 = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| err("--quota needs seconds"))?;
                    if !secs.is_finite() || secs < 0.0 {
                        return Err(err("--quota must be a non-negative number of seconds"));
                    }
                    cli.quota_secs = Some(secs);
                }
                "--agg" => {
                    cli.agg = parse_agg(
                        &args.next().ok_or_else(|| err("--agg needs count|sum:COL|avg:COL"))?,
                    )?;
                }
                "--help" | "-h" => return Err(err(USAGE)),
                other => return Err(err(format!("unknown argument {other:?}\n{USAGE}"))),
            }
        }
        if cli.query.is_some() && cli.quota_secs.is_none() {
            return Err(err("--query requires --quota"));
        }
        Ok(cli)
    }
}

fn parse_load(spec: &str) -> Result<LoadSpec, CliError> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or_else(|| err(format!("bad --load {spec:?}: expected NAME=FILE:SCHEMA")))?;
    let (path, schema_spec) = rest
        .split_once(':')
        .ok_or_else(|| err(format!("bad --load {spec:?}: expected NAME=FILE:SCHEMA")))?;
    if name.is_empty() || path.is_empty() || schema_spec.is_empty() {
        return Err(err(format!("bad --load {spec:?}")));
    }
    Ok(LoadSpec {
        name: name.to_owned(),
        path: PathBuf::from(path),
        schema_spec: schema_spec.to_owned(),
    })
}

fn parse_agg(text: &str) -> Result<AggregateFn, CliError> {
    if text == "count" {
        return Ok(AggregateFn::Count);
    }
    if let Some(col) = text.strip_prefix("sum:") {
        let column = col.parse().map_err(|_| err("bad sum column"))?;
        return Ok(AggregateFn::Sum { column });
    }
    if let Some(col) = text.strip_prefix("avg:") {
        let column = col.parse().map_err(|_| err("bad avg column"))?;
        return Ok(AggregateFn::Avg { column });
    }
    Err(err(format!("bad --agg {text:?} (count|sum:COL|avg:COL)")))
}

/// Builds the database and loads every `--load` relation.
pub fn build_database(cli: &Cli) -> Result<Database, CliError> {
    let profile = match cli.device {
        Device::Sun => DeviceProfile::sun_3_60(),
        Device::Modern => DeviceProfile::modern(),
    };
    let mut db = if cli.cache_blocks > 0 {
        Database::sim_cached(profile, cli.seed, cli.cache_blocks)
    } else {
        Database::sim(profile, cli.seed)
    };
    if cli.device == Device::Modern {
        db.set_default_cost_model(eram_core::CostModel::modern_default());
    }
    for load in &cli.loads {
        let schema = parse_schema_spec(&load.schema_spec, None)
            .map_err(|e| err(format!("--load {}: {e}", load.name)))?;
        let n = db
            .load_csv(load.name.clone(), schema, &load.path, cli.header)
            .map_err(|e| err(format!("--load {}: {e}", load.name)))?;
        eprintln!("loaded {} ({n} tuples)", load.name);
    }
    Ok(db)
}

/// Runs a one-shot aggregate and renders the outcome.
pub fn run_one_shot(db: &mut Database, cli: &Cli) -> Result<String, CliError> {
    let text = cli.query.as_deref().expect("caller checked");
    let quota = Duration::from_secs_f64(cli.quota_secs.expect("caller checked"));
    let expr = parse_expr(text).map_err(|e| err(e.to_string()))?;
    let out = db
        .aggregate(cli.agg, expr)
        .within(quota)
        .run()
        .map_err(|e| err(e.to_string()))?;
    let (lo, hi) = out.estimate.ci(0.95);
    Ok(format!(
        "estimate {:.2}\n95% CI [{lo:.2}, {hi:.2}]\nstages {} | blocks {} | utilization {:.1}% | elapsed {:?}",
        out.estimate.estimate,
        out.report.completed_stages(),
        out.report.blocks_evaluated(),
        100.0 * out.report.utilization(),
        out.report.total_elapsed,
    ))
}

/// Dispatches one interactive command. `Ok(None)` means quit.
pub fn dispatch(db: &mut Database, input: &str) -> Result<Option<String>, CliError> {
    let input = input.trim();
    if input.is_empty() {
        return Ok(Some(String::new()));
    }
    if input == "quit" || input == "exit" {
        return Ok(None);
    }
    if input == "help" {
        return Ok(Some(
            "  count <expr> within <secs>\n  sum <col> <expr> within <secs>\n  \
             avg <col> <expr> within <secs>\n  exact <expr>\n  relations\n  quit"
                .into(),
        ));
    }
    if input == "relations" {
        let mut out = String::new();
        for name in db.catalog().names() {
            if let Some(r) = db.catalog().relation(name) {
                out.push_str(&format!(
                    "  {name}: {} tuples, {} blocks\n",
                    r.num_tuples(),
                    r.num_blocks()
                ));
            }
        }
        return Ok(Some(out.trim_end().to_string()));
    }
    if let Some(rest) = input.strip_prefix("exact ") {
        let expr = parse_expr(rest.trim()).map_err(|e| err(e.to_string()))?;
        let n = db.exact_count(&expr).map_err(|e| err(e.to_string()))?;
        return Ok(Some(format!("  exact COUNT = {n}")));
    }
    for (prefix, make) in [
        ("count ", None),
        ("sum ", Some(true)),
        ("avg ", Some(false)),
    ] {
        if let Some(rest) = input.strip_prefix(prefix) {
            let (agg, rest) = match make {
                None => (AggregateFn::Count, rest),
                Some(is_sum) => {
                    let (col, tail) = rest
                        .trim_start()
                        .split_once(' ')
                        .ok_or_else(|| err(format!("usage: {prefix}<col> <expr> within <secs>")))?;
                    let column: usize = col.parse().map_err(|_| err("bad column index"))?;
                    let agg = if is_sum {
                        AggregateFn::Sum { column }
                    } else {
                        AggregateFn::Avg { column }
                    };
                    (agg, tail)
                }
            };
            let (expr_text, quota_text) = rest
                .rsplit_once(" within ")
                .ok_or_else(|| err(format!("usage: {prefix}... <expr> within <secs>")))?;
            let expr = parse_expr(expr_text.trim()).map_err(|e| err(e.to_string()))?;
            let secs: f64 = quota_text
                .trim()
                .parse()
                .map_err(|_| err("quota must be a number of seconds"))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(err("quota must be a non-negative number of seconds"));
            }
            let out = db
                .aggregate(agg, expr)
                .within(Duration::from_secs_f64(secs))
                .run()
                .map_err(|e| err(e.to_string()))?;
            let (lo, hi) = out.estimate.ci(0.95);
            return Ok(Some(format!(
                "  ≈ {:.2}   (95% CI [{lo:.2}, {hi:.2}])\n  {} stages, {} blocks, {:.1}% of quota used",
                out.estimate.estimate,
                out.report.completed_stages(),
                out.report.blocks_evaluated(),
                100.0 * out.report.utilization(),
            )));
        }
    }
    Err(err(format!("unknown command {input:?}; try `help`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_csv(name: &str, content: &str) -> PathBuf {
        let path = std::env::temp_dir().join(format!("eram-cli-{name}-{}.csv", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn parses_full_command_line() {
        let cli = Cli::parse([
            "--load",
            "orders=o.csv:id:int,price:float",
            "--device",
            "modern",
            "--cache",
            "128",
            "--seed",
            "9",
            "--header",
            "--query",
            "select[#0 < 5](orders)",
            "--quota",
            "2.5",
            "--agg",
            "sum:1",
        ])
        .unwrap();
        assert_eq!(cli.loads.len(), 1);
        assert_eq!(cli.loads[0].name, "orders");
        assert_eq!(cli.loads[0].schema_spec, "id:int,price:float");
        assert_eq!(cli.device, Device::Modern);
        assert_eq!(cli.cache_blocks, 128);
        assert_eq!(cli.seed, 9);
        assert!(cli.header);
        assert_eq!(cli.quota_secs, Some(2.5));
        assert_eq!(cli.agg, AggregateFn::Sum { column: 1 });
    }

    #[test]
    fn rejects_malformed_arguments() {
        assert!(Cli::parse(["--load", "noequals"]).is_err());
        assert!(Cli::parse(["--quota", "nan"]).is_err());
        assert!(Cli::parse(["--quota", "inf"]).is_err());
        assert!(Cli::parse(["--quota", "-2"]).is_err());
        assert!(Cli::parse(["--device", "vax"]).is_err());
        assert!(Cli::parse(["--agg", "median:1"]).is_err());
        assert!(Cli::parse(["--query", "r"]).is_err()); // no quota
        assert!(Cli::parse(["--flux"]).is_err());
        assert!(Cli::parse(["--cache"]).is_err());
    }

    #[test]
    fn end_to_end_one_shot() {
        let csv = write_csv(
            "oneshot",
            "id,price\n0,10\n1,20\n2,30\n3,40\n4,50\n5,60\n6,70\n7,80\n",
        );
        let cli = Cli::parse([
            "--load".to_string(),
            format!("orders={}:id:int,price:int", csv.display()),
            "--header".to_string(),
            "--query".to_string(),
            "select[#1 >= 50](orders)".to_string(),
            "--quota".to_string(),
            "60".to_string(),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();
        let rendered = run_one_shot(&mut db, &cli).unwrap();
        // Tiny relation + big quota → census → exact 4.
        assert!(rendered.contains("estimate 4.00"), "{rendered}");
        let _ = std::fs::remove_file(csv);
    }

    #[test]
    fn interactive_dispatch_round_trip() {
        let csv = write_csv("shell", "0,5\n1,15\n2,25\n3,35\n");
        let cli = Cli::parse([
            "--load".to_string(),
            format!("t={}:k:int,v:int", csv.display()),
        ])
        .unwrap();
        let mut db = build_database(&cli).unwrap();

        let out = dispatch(&mut db, "relations").unwrap().unwrap();
        assert!(out.contains("t: 4 tuples"));

        let out = dispatch(&mut db, "exact select[#1 > 10](t)").unwrap().unwrap();
        assert!(out.contains("= 3"));

        let out = dispatch(&mut db, "count select[#1 > 10](t) within 60")
            .unwrap()
            .unwrap();
        assert!(out.contains("≈ 3.00"), "{out}");

        let out = dispatch(&mut db, "sum 1 t within 60").unwrap().unwrap();
        assert!(out.contains("≈ 80.00"), "{out}");

        let out = dispatch(&mut db, "avg 1 t within 60").unwrap().unwrap();
        assert!(out.contains("≈ 20.00"), "{out}");

        assert!(dispatch(&mut db, "quit").unwrap().is_none());
        assert!(dispatch(&mut db, "explode").is_err());
        assert!(dispatch(&mut db, "count t").is_err()); // missing within
        let _ = std::fs::remove_file(csv);
    }
}
