//! The `eram` binary: load CSV relations, then answer time-quota
//! aggregate queries one-shot or interactively. See `eram --help`.

use std::io::{BufRead, Write};

use eram_cli::{build_database, dispatch, run_one_shot, run_serve, Cli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let mut db = match build_database(&cli) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    if cli.query.is_some() {
        match run_one_shot(&mut db, &cli) {
            Ok(rendered) => println!("{rendered}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    if cli.serve.is_some() {
        match run_serve(&mut db, &cli) {
            Ok(rendered) => println!("{rendered}"),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("eram shell — `help` for commands");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("eram> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        match dispatch(&mut db, &line) {
            Ok(Some(out)) => {
                if !out.is_empty() {
                    println!("{out}");
                }
            }
            Ok(None) => break,
            Err(e) => println!("error: {e}"),
        }
    }
}
