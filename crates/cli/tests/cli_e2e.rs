//! End-to-end tests driving the actual `eram` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_eram")
}

fn write_csv(label: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("eram-bin-{label}-{}.csv", std::process::id()));
    let mut content = String::from("id,price\n");
    for i in 0..100 {
        content.push_str(&format!("{i},{}\n", i * 10));
    }
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn one_shot_query_prints_estimate() {
    let csv = write_csv("oneshot");
    let out = Command::new(bin())
        .args([
            "--load",
            &format!("orders={}:id:int,price:int", csv.display()),
            "--header",
            "--query",
            "select[#1 >= 500](orders)",
            "--quota",
            "120",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Census within a huge quota: exactly 50 rows have price ≥ 500.
    assert!(stdout.contains("estimate 50.00"), "{stdout}");
    assert!(stdout.contains("95% CI"), "{stdout}");
    let _ = std::fs::remove_file(csv);
}

#[test]
fn interactive_session_round_trip() {
    let csv = write_csv("shell");
    let mut child = Command::new(bin())
        .args([
            "--load",
            &format!("t={}:id:int,price:int", csv.display()),
            "--header",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"relations\nexact select[#1 >= 500](t)\nquit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("t: 100 tuples"), "{stdout}");
    assert!(stdout.contains("exact COUNT = 50"), "{stdout}");
    let _ = std::fs::remove_file(csv);
}

#[test]
fn bad_arguments_exit_nonzero_with_usage() {
    let out = Command::new(bin()).args(["--bogus"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_csv_is_a_clean_error() {
    let out = Command::new(bin())
        .args(["--load", "x=/definitely/not/here.csv:a:int"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--load x"), "{stderr}");
}
