//! Offline **type-check stub** for `criterion` 0.5.
//!
//! `cargo bench` against this stub runs every bench closure exactly
//! once (a smoke run) and measures nothing. Real criterion remains
//! the measurement authority on machines with a reachable registry.

use std::time::Duration;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("criterion stub: {id} (single smoke iteration)");
        let mut b = Bencher {};
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("criterion stub group: {name}");
        BenchmarkGroup { _parent: self }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("criterion stub:   {id} (single smoke iteration)");
        let mut b = Bencher {};
        f(&mut b);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = { $config };
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
