//! Offline **type-check stub** for `proptest` 1.
//!
//! Mirrors the subset of the proptest API this workspace uses. A
//! [`Strategy`](strategy::Strategy) here is just a deterministic
//! seed→value function, and the [`proptest!`] macro runs each body a
//! handful of times with derived seeds — so under the stub the
//! property tests compile *and* execute as smoke tests, without any
//! shrinking or true random exploration. Real proptest (driver-side
//! CI) remains the authority.

/// SplitMix64 step — the stub's seed-derivation workhorse.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod test_runner {
    /// Stub `proptest::test_runner::Config` (aliased `ProptestConfig`
    /// in the prelude).
    #[derive(Debug, Clone, Default)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    /// Stub `TestCaseError`: a failed `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use std::rc::Rc;

    use super::splitmix;

    /// Stub `Strategy`: one deterministic example per seed.
    pub trait Strategy {
        type Value;

        fn example(&self, seed: u64) -> Self::Value;

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |seed| self.example(seed)))
        }

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let base = self.boxed();
            BoxedStrategy(Rc::new(move |seed| {
                let levels = seed % (depth as u64 + 1);
                let mut strat = base.clone();
                for _ in 0..levels {
                    strat = recurse(strat.clone()).boxed();
                }
                strat.example(splitmix(seed))
            }))
        }
    }

    /// Stub `BoxedStrategy`: a clonable seed→value closure.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(u64) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn example(&self, seed: u64) -> T {
            (self.0)(seed)
        }
    }

    /// Stub `Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn example(&self, _seed: u64) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn example(&self, seed: u64) -> O {
            (self.f)(self.inner.example(seed))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn example(&self, seed: u64) -> S2::Value {
            (self.f)(self.inner.example(seed)).example(splitmix(seed))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn example(&self, seed: u64) -> S::Value {
            let mut s = seed;
            for _ in 0..10_000 {
                let candidate = self.inner.example(s);
                if (self.f)(&candidate) {
                    return candidate;
                }
                s = splitmix(s);
            }
            panic!("proptest stub: filter rejected 10k candidate examples");
        }
    }

    /// N-way alternation backing the stub `prop_oneof!`.
    pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn example(&self, seed: u64) -> T {
            let pick = (seed % self.0.len() as u64) as usize;
            self.0[pick].example(splitmix(seed))
        }
    }

    /// Real proptest treats `&str` as a regex strategy. The stub does
    /// not interpret regex syntax; it emits a short lowercase word,
    /// which lies inside the simple character-class patterns this
    /// workspace uses (`[a-z…]{0,8}`-style identifiers).
    impl Strategy for &'static str {
        type Value = String;

        fn example(&self, seed: u64) -> String {
            let mut s = splitmix(seed);
            let len = 1 + (s % 6) as usize;
            let mut out = String::with_capacity(len);
            for _ in 0..len {
                s = splitmix(s);
                out.push((b'a' + (s % 26) as u8) as char);
            }
            out
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn example(&self, seed: u64) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    let span = (hi - lo).max(1) as u128;
                    (lo + (seed as u128 % span) as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn example(&self, seed: u64) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    let span = (hi - lo + 1).max(1) as u128;
                    (lo + (seed as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn example(&self, seed: u64) -> $t {
                    let f = (seed >> 11) as $t / (1u64 << 53) as $t;
                    self.start + (self.end - self.start) * f
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn example(&self, seed: u64) -> $t {
                    let f = (seed >> 11) as $t / (1u64 << 53) as $t;
                    self.start() + (self.end() - self.start()) * f
                }
            }
        )*};
    }
    float_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn example(&self, seed: u64) -> Self::Value {
                    let mut s = seed;
                    ($({
                        s = splitmix(s ^ $idx);
                        self.$idx.example(s)
                    },)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod arbitrary {
    use super::splitmix;
    use super::strategy::Strategy;

    /// Stub `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn stub_any(seed: u64) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn stub_any(seed: u64) -> Self { seed as $t }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn stub_any(seed: u64) -> Self {
            seed & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn stub_any(seed: u64) -> Self {
            (seed >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn example(&self, seed: u64) -> T {
            T::stub_any(splitmix(seed))
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::splitmix;
    use super::strategy::Strategy;

    /// Stub `SizeRange`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn example(&self, seed: u64) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + (seed % span) as usize;
            let mut s = seed;
            (0..len)
                .map(|_| {
                    s = splitmix(s);
                    self.element.example(s)
                })
                .collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;

    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn example(&self, seed: u64) -> T {
            self.0[(seed % self.0.len() as u64) as usize].clone()
        }
    }

    /// Stub `prop::sample::select`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select of empty set");
        Select(values)
    }
}

/// Stub `proptest!`: each property runs as a plain `#[test]` over a
/// few derived example seeds (no shrinking, no true exploration).
#[macro_export]
macro_rules! proptest {
    // Closure form: runs the property inline over the example seeds.
    (
        $(move)? |( $($arg:pat in $strat:expr),* $(,)? )| $body:block
    ) => {{
        for __case in 0u64..3 {
            let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                let mut __seed: u64 = 0x5EED_0000u64.wrapping_add(__case.wrapping_mul(0x9E37_79B9));
                $(
                    __seed = __seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let $arg = $crate::strategy::Strategy::example(&($strat), __seed);
                )*
                { $body }
                Ok(())
            })();
            if let Err(e) = __result {
                panic!("proptest stub case {__case} failed: {e}");
            }
        }
    }};
    (
        $(#![proptest_config($cfg:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0u64..3 {
                    let __result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let mut __seed: u64 = 0x5EED_0000u64.wrapping_add(__case.wrapping_mul(0x9E37_79B9));
                        $(
                            __seed = __seed
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            let $arg = $crate::strategy::Strategy::example(&($strat), __seed);
                        )*
                        { $body }
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!("proptest stub case {__case} failed: {e}");
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}
