//! Offline **type-check stub** for `serde_derive`.
//!
//! The stub `serde` traits carry only default methods, so a derive
//! here just emits an *empty* impl — all that takes from the input
//! token stream is the type name. `#[serde(...)]` attributes are
//! accepted and ignored. Generic types are rejected with a clear
//! message (this workspace derives only on concrete types).

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following `struct`/`enum`, skipping outer
/// attributes and visibility tokens.
fn type_name(input: TokenStream) -> String {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // `#[...]`: consume the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next();
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    for tt2 in iter.by_ref() {
                        if let TokenTree::Ident(name) = tt2 {
                            if let Some(TokenTree::Punct(p)) = iter.peek() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "offline serde stub: generic type `{name}` not \
                                         supported — hand-write the impl or extend the stub"
                                    );
                                }
                            }
                            return name.to_string();
                        }
                    }
                }
                // `pub`, `pub(crate)`, etc.: keep scanning.
            }
            _ => {}
        }
    }
    panic!("offline serde stub: no struct/enum name in derive input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("stub impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("stub impl parses")
}
