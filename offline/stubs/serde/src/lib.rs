//! Offline **type-check stub** for `serde` 1.
//!
//! The traits carry only default methods, so the stub derive macros
//! (`offline/stubs/serde_derive`) expand to *empty* trait impls — no
//! field parsing needed. Nothing here can actually serialize; it
//! exists purely so `cargo check` works offline. Code that checks
//! against this stub and sticks to derived impls + `serde_json`'s
//! function surface will also check against real serde.

/// Type-check stand-in for `serde::Serialize`.
pub trait Serialize {
    /// Stub hook; real serde's `serialize` is generic over `S`.
    fn stub_describe(&self) -> &'static str {
        "serde offline stub"
    }
}

/// Type-check stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {
    /// Stub hook; always `None` (the stub cannot build values).
    fn stub_absent() -> Option<Self> {
        None
    }
}

/// Type-check stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}

macro_rules! impl_both {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_both!(
    (),
    bool,
    char,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    String,
    std::time::Duration,
    std::time::SystemTime,
    std::path::PathBuf,
);

impl Serialize for str {}
impl Serialize for std::path::Path {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de> + Default + Copy, const N: usize> Deserialize<'de> for [T; N] {}

impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {}
impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {}
impl<'de, K, V, S> Deserialize<'de> for std::collections::HashMap<K, V, S>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    S: std::hash::BuildHasher + Default,
{
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for std::collections::BTreeSet<T> {}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
