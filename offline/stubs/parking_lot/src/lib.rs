//! Offline **type-check stub** for `parking_lot` 0.12: `Mutex` and
//! `RwLock` re-expressed over `std::sync` with the poison layer
//! unwrapped (parking_lot's locks do not poison).

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
