//! Offline **type-check stub** for `rand` 0.8.
//!
//! This crate exists so `cargo check` can run in containers where the
//! crates registry is unreachable (see `offline/README.md`). It
//! mirrors the subset of the `rand` 0.8 API surface this workspace
//! uses, with working-but-unofficial implementations (an xorshift
//! generator instead of ChaCha). It must NEVER be used to produce
//! blessed artifacts: its streams differ from real `rand`.

/// Marker matching `rand::Error` closely enough for signatures.
#[derive(Debug)]
pub struct Error;

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let bytes = seed.as_mut();
        let mut x = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for chunk in bytes.chunks_mut(8) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            for (b, s) in chunk.iter_mut().zip(x.to_le_bytes()) {
                *b = s;
            }
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        }
        Self::from_seed(seed)
    }
}

/// Uniform-range support: the sliver of `rand::distributions` the
/// `gen_range` method needs.
pub mod distributions {
    pub mod uniform {
        use std::ops::{Range, RangeInclusive};

        /// A half-open or inclusive range argument to `gen_range`.
        pub trait SampleRange<T> {
            fn stub_bounds(self) -> (T, T, bool);
        }

        pub trait SampleUniform: Sized + Copy + PartialOrd {
            fn stub_lerp(lo: Self, hi: Self, inclusive: bool, r: u64) -> Self;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn stub_bounds(self) -> (T, T, bool) {
                (self.start, self.end, false)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn stub_bounds(self) -> (T, T, bool) {
                let (s, e) = self.into_inner();
                (s, e, true)
            }
        }

        macro_rules! impl_int_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn stub_lerp(lo: Self, hi: Self, inclusive: bool, r: u64) -> Self {
                        let lo128 = lo as i128;
                        let hi128 = hi as i128;
                        let span = (hi128 - lo128 + if inclusive { 1 } else { 0 }).max(1) as u128;
                        (lo128 + (r as u128 % span) as i128) as $t
                    }
                }
            )*};
        }
        impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_uniform {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn stub_lerp(lo: Self, hi: Self, _inclusive: bool, r: u64) -> Self {
                        let f = (r >> 11) as $t / (1u64 << 53) as $t;
                        lo + (hi - lo) * f
                    }
                }
            )*};
        }
        impl_float_uniform!(f32, f64);
    }

    /// `Standard` distribution marker for `gen::<T>()`.
    pub struct Standard;

    pub trait Distribution<T> {
        fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Types drawable by `Rng::gen` (the `Standard` distribution).
pub trait StandardDraw: Sized {
    fn stub_draw(r: u64) -> Self;
}

impl StandardDraw for f64 {
    fn stub_draw(r: u64) -> Self {
        (r >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardDraw for f32 {
    fn stub_draw(r: u64) -> Self {
        (r >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardDraw for bool {
    fn stub_draw(r: u64) -> Self {
        r & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDraw for $t {
            fn stub_draw(r: u64) -> Self { r as $t }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen<T: StandardDraw>(&mut self) -> T {
        T::stub_draw(self.next_u64())
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        let (lo, hi, inclusive) = range.stub_bounds();
        T::stub_lerp(lo, hi, inclusive, self.next_u64())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng` (xorshift128+, NOT ChaCha —
    /// streams differ from the real crate).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s0: u64,
        s1: u64,
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut x = self.s0;
            let y = self.s1;
            self.s0 = y;
            x ^= x << 23;
            self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
            self.s1.wrapping_add(y)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next_u64().to_le_bytes();
                for (b, s) in chunk.iter_mut().zip(v) {
                    *b = s;
                }
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 2];
            for i in 0..2 {
                let mut v = [0u8; 8];
                v.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                s[i] = u64::from_le_bytes(v);
            }
            StdRng {
                s0: s[0] | 1,
                s1: s[1] | 2,
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}
