//! Offline **type-check stub** for `serde_json` 1.
//!
//! [`Value`], [`Map`], and the [`json!`] macro are real enough to
//! build and compare in-memory documents; the conversion functions
//! ([`to_string`], [`from_str`], ...) type-check against the stub
//! serde traits but *fail at runtime* — the stub cannot serialize.
//! Only `cargo check` is expected to consume this crate.

use std::fmt;

/// Stub `serde_json::Map` — same API subset as the real ordered map.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// Stub `serde_json::Number`: everything is an f64 underneath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(f64);

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        Some(self.0)
    }

    pub fn as_u64(&self) -> Option<u64> {
        (self.0 >= 0.0 && self.0.fract() == 0.0).then_some(self.0 as u64)
    }

    pub fn as_i64(&self) -> Option<i64> {
        (self.0.fract() == 0.0).then_some(self.0 as i64)
    }

    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number(f))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Stub `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get<I: Index>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }

    pub fn get_mut<I: Index>(&mut self, index: I) -> Option<&mut Value> {
        index.index_into_mut(self)
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{s:?}"),
            Value::Array(_) | Value::Object(_) => write!(f, "<stub json>"),
        }
    }
}

/// Index-argument trait mirroring `serde_json::value::Index`.
pub trait Index {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value>;
}

impl Index for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_object_mut().and_then(|m| m.get_mut(self))
    }
}

impl Index for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        self.as_str().index_into_mut(v)
    }
}

impl Index for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        v.as_array_mut().and_then(|a| a.get_mut(*self))
    }
}

impl<T: Index + ?Sized> Index for &T {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (**self).index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> Option<&'v mut Value> {
        (**self).index_into_mut(v)
    }
}

impl<I: Index> std::ops::Index<I> for Value {
    type Output = Value;

    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number(v as f64)) }
        }
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool { other == self }
        }
    )*};
}
from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl serde::Serialize for Value {}
impl<'de> serde::Deserialize<'de> for Value {}

/// Stub `serde_json::Error`.
#[derive(Debug)]
pub struct Error(&'static str);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json offline stub: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

const STUB: &str = "conversion functions are unavailable offline";

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error(STUB))
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Err(Error(STUB))
}

pub fn to_value<T: serde::Serialize>(_value: T) -> Result<Value> {
    Err(Error(STUB))
}

pub fn from_value<T: serde::de::DeserializeOwned>(_value: Value) -> Result<T> {
    Err(Error(STUB))
}

pub fn from_str<'a, T: serde::Deserialize<'a>>(_s: &'a str) -> Result<T> {
    Err(Error(STUB))
}

pub fn from_slice<'a, T: serde::Deserialize<'a>>(_v: &'a [u8]) -> Result<T> {
    Err(Error(STUB))
}

///// Conversion point for `json!` expression operands. The real macro
/// routes them through `to_value`, accepting any `T: Serialize`; the
/// stub accepts the same bound but yields `Value::Null` (serialization
/// is a registry-side concern — see offline/README.md).
pub fn stub_to_value<T: ?Sized + serde::Serialize>(_v: &T) -> Value {
    Value::Null
}

/// Autoref-specialization wrapper for `json!` operands: primitives
/// convert to real [`Value`]s (so documents built by the stub compare
/// meaningfully); everything else degrades to `Value::Null`.
pub struct ValueWrap<'a, T: ?Sized>(pub &'a T);

/// Preferred conversion: concrete impls for the primitive operand
/// types `json!` call sites use. Found first by method resolution
/// (receiver `ValueWrap<T>` beats the `&ValueWrap<T>` fallback).
pub trait PrimToValue {
    fn stub_val(&self) -> Value;
}

/// Fallback conversion for arbitrary `Serialize` operands.
pub trait AnyToValue {
    fn stub_val(&self) -> Value;
}

impl<T: ?Sized + serde::Serialize> AnyToValue for &ValueWrap<'_, T> {
    fn stub_val(&self) -> Value {
        Value::Null
    }
}

macro_rules! impl_prim_to_value_num {
    ($($t:ty),*) => {$(
        impl PrimToValue for ValueWrap<'_, $t> {
            fn stub_val(&self) -> Value {
                Number::from_f64(*self.0 as f64).map_or(Value::Null, Value::Number)
            }
        }
    )*};
}
impl_prim_to_value_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PrimToValue for ValueWrap<'_, bool> {
    fn stub_val(&self) -> Value {
        Value::Bool(*self.0)
    }
}

impl PrimToValue for ValueWrap<'_, str> {
    fn stub_val(&self) -> Value {
        Value::String(self.0.to_string())
    }
}

impl PrimToValue for ValueWrap<'_, &str> {
    fn stub_val(&self) -> Value {
        Value::String(self.0.to_string())
    }
}

impl PrimToValue for ValueWrap<'_, String> {
    fn stub_val(&self) -> Value {
        Value::String(self.0.clone())
    }
}

impl PrimToValue for ValueWrap<'_, Value> {
    fn stub_val(&self) -> Value {
        self.0.clone()
    }
}

/// Stub `json!`: objects take `"key": expr` pairs (values are full
/// expressions — nested `json!` calls cover nested documents).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {{
        #[allow(unused_imports)]
        use $crate::{AnyToValue as _, PrimToValue as _};
        $crate::Value::Array(vec![ $((&$crate::ValueWrap(&$elem)).stub_val()),* ])
    }};
    ({ $($key:tt : $val:expr),* $(,)? }) => {{
        #[allow(unused_imports)]
        use $crate::{AnyToValue as _, PrimToValue as _};
        let mut m = $crate::Map::new();
        $( m.insert(String::from($key), (&$crate::ValueWrap(&$val)).stub_val()); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => {{
        #[allow(unused_imports)]
        use $crate::{AnyToValue as _, PrimToValue as _};
        (&$crate::ValueWrap(&$other)).stub_val()
    }};
}
